package sentinel

import (
	"context"
	"errors"
	"testing"
	"time"
)

// noSleep is a test sleeper that records backoffs instead of waiting.
func noSleep(log *[]time.Duration) func(context.Context, time.Duration) error {
	return func(ctx context.Context, d time.Duration) error {
		*log = append(*log, d)
		return ctx.Err()
	}
}

func TestRetryTransientSucceeds(t *testing.T) {
	var backoffs []time.Duration
	p := RetryPolicy{MaxAttempts: 5, BaseBackoff: 10 * time.Millisecond,
		MaxBackoff: 40 * time.Millisecond, Sleep: noSleep(&backoffs)}
	calls := 0
	retries, err := p.Do(context.Background(), func(ctx context.Context) error {
		calls++
		if calls < 4 {
			return MarkTransient(errors.New("flap"))
		}
		return nil
	})
	if err != nil || retries != 3 || calls != 4 {
		t.Fatalf("retries=%d calls=%d err=%v", retries, calls, err)
	}
	// Exponential growth, capped: 10, 20, 40 (the cap).
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}
	if len(backoffs) != len(want) {
		t.Fatalf("backoffs: %v", backoffs)
	}
	for i := range want {
		if backoffs[i] != want[i] {
			t.Fatalf("backoff %d = %v, want %v", i, backoffs[i], want[i])
		}
	}
}

func TestRetryPermanentFailsFast(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5}
	calls := 0
	boom := errors.New("corrupt archive")
	retries, err := p.Do(context.Background(), func(ctx context.Context) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) || retries != 0 || calls != 1 {
		t.Fatalf("permanent error retried: retries=%d calls=%d err=%v", retries, calls, err)
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	var backoffs []time.Duration
	p := RetryPolicy{MaxAttempts: 3, Sleep: noSleep(&backoffs)}
	calls := 0
	retries, err := p.Do(context.Background(), func(ctx context.Context) error {
		calls++
		return MarkTransient(errors.New("flap"))
	})
	if err == nil || retries != 2 || calls != 3 {
		t.Fatalf("retries=%d calls=%d err=%v", retries, calls, err)
	}
	if !IsTransient(err) {
		t.Fatalf("exhausted error should still classify transient: %v", err)
	}
}

func TestRetryCancellationNotTransient(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := RetryPolicy{MaxAttempts: 5}
	calls := 0
	_, err := p.Do(ctx, func(ctx context.Context) error {
		calls++
		return MarkTransient(ctx.Err())
	})
	if calls != 1 || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled op retried: calls=%d err=%v", calls, err)
	}
	if IsTransient(context.Canceled) || IsTransient(MarkTransient(context.Canceled)) {
		t.Fatal("context cancellation must never classify transient")
	}
}

func TestFailoverOrderAndCounts(t *testing.T) {
	var backoffs []time.Duration
	p := RetryPolicy{MaxAttempts: 2, Sleep: noSleep(&backoffs)}
	var tried []int
	retries, failovers, err := Failover(context.Background(), p, 3,
		func(ctx context.Context, ep int) error {
			tried = append(tried, ep)
			if ep < 2 {
				return MarkTransient(errors.New("down"))
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	// Endpoints 0 and 1 each burn 2 attempts, endpoint 2 succeeds.
	if retries != 2 || failovers != 2 {
		t.Fatalf("retries=%d failovers=%d", retries, failovers)
	}
	want := []int{0, 0, 1, 1, 2}
	if len(tried) != len(want) {
		t.Fatalf("tried: %v", tried)
	}
	for i := range want {
		if tried[i] != want[i] {
			t.Fatalf("attempt %d hit endpoint %d, want %d", i, tried[i], want[i])
		}
	}
}

func TestFailoverPermanentSkipsRetries(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 4}
	calls := 0
	_, failovers, err := Failover(context.Background(), p, 2,
		func(ctx context.Context, ep int) error {
			calls++
			return errors.New("permanent")
		})
	if calls != 2 || failovers != 1 {
		t.Fatalf("permanent endpoint errors should fail over without retries: calls=%d failovers=%d", calls, failovers)
	}
	var pe *PermanentError
	if !errors.As(err, &pe) {
		t.Fatalf("terminal error not classified: %v", err)
	}
	if pe.Transient || pe.Attempts != 2 || pe.Endpoints != 2 {
		t.Fatalf("classification: %+v", pe)
	}
}

func TestFailoverExhaustedTransient(t *testing.T) {
	var backoffs []time.Duration
	p := RetryPolicy{MaxAttempts: 2, Sleep: noSleep(&backoffs)}
	_, _, err := Failover(context.Background(), p, 2,
		func(ctx context.Context, ep int) error {
			return MarkTransient(errors.New("flap"))
		})
	var pe *PermanentError
	if !errors.As(err, &pe) || !pe.Transient || pe.Attempts != 4 {
		t.Fatalf("exhausted classification: %v", err)
	}
}

func TestFailoverCancellationReturnsBare(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := RetryPolicy{MaxAttempts: 3}
	_, _, err := Failover(ctx, p, 3, func(ctx context.Context, ep int) error {
		cancel()
		return ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want bare context.Canceled, got %v", err)
	}
	var pe *PermanentError
	if errors.As(err, &pe) {
		t.Fatal("cancellation must not be wrapped as a permanent failure")
	}
}
