package cluster

import (
	"testing"

	"ocelot/internal/sim"
)

func anvil() *Machine { return Standard()["Anvil"] }

func uniformSizes(n int, size int64) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = size
	}
	return out
}

func TestStandardMachinesValid(t *testing.T) {
	for name, m := range Standard() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestValidateCatchesBadSpecs(t *testing.T) {
	bad := []*Machine{
		{Name: "x", Nodes: 0, CoresPerNode: 1, CompressMBpsPerCore: 1, DecompressMBpsPerCore: 1, PFSWriteMBps: 1, IOKneeNodes: 1},
		{Name: "x", Nodes: 1, CoresPerNode: 1, CompressMBpsPerCore: 0, DecompressMBpsPerCore: 1, PFSWriteMBps: 1, IOKneeNodes: 1},
		{Name: "x", Nodes: 1, CoresPerNode: 1, CompressMBpsPerCore: 1, DecompressMBpsPerCore: 1, PFSWriteMBps: 0, IOKneeNodes: 1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

// TestFig9CompressionScaling: compression time falls with node count until
// core count reaches the file count (paper Fig 9 left).
func TestFig9CompressionScaling(t *testing.T) {
	m := anvil()
	sizes := uniformSizes(768, 150e6) // Miranda-like: 768 files of 150MB
	var prev float64 = 1e18
	for _, nodes := range []int{1, 2, 4, 6} {
		tt := m.CompressTime(sizes, nodes)
		if tt >= prev {
			t.Errorf("compression time should fall: nodes=%d t=%.2f prev=%.2f", nodes, tt, prev)
		}
		prev = tt
	}
	// Saturation: 768 files, 6 nodes = 768 cores; more nodes don't help.
	t6 := m.CompressTime(sizes, 6)
	t16 := m.CompressTime(sizes, 16)
	if t16 < 0.95*t6 {
		t.Errorf("beyond saturation compression kept speeding up: %v vs %v", t16, t6)
	}
}

// TestFig9DecompressionContention: decompression improves to the PFS knee
// then degrades (paper Fig 9 right; CESM: 68.7s on 4 nodes, >5min on 16).
func TestFig9DecompressionContention(t *testing.T) {
	m := anvil()
	sizes := uniformSizes(7182, 224e6) // CESM-like
	t4 := m.DecompressTime(sizes, 4)
	t16 := m.DecompressTime(sizes, 16)
	if t16 <= t4 {
		t.Fatalf("I/O contention should slow 16 nodes (%.1fs) vs 4 nodes (%.1fs)", t16, t4)
	}
	if t16 < 3*t4 {
		t.Errorf("contention too weak: %.1fs vs %.1fs (paper: 68.7s -> >300s)", t4, t16)
	}
	t1 := m.DecompressTime(sizes, 1)
	if t4 >= t1 {
		t.Errorf("up to the knee more nodes should help: t1=%.1f t4=%.1f", t1, t4)
	}
}

func TestEmptyAndZeroInputs(t *testing.T) {
	m := anvil()
	if tt := m.CompressTime(nil, 4); tt != 0 {
		t.Errorf("empty file list time = %v", tt)
	}
	if tt := m.CompressTime(uniformSizes(3, 1e6), 0); tt != 0 {
		t.Errorf("zero nodes time = %v", tt)
	}
}

func TestNodesCapped(t *testing.T) {
	m := anvil()
	sizes := uniformSizes(100000, 1e6)
	a := m.CompressTime(sizes, m.Nodes)
	b := m.CompressTime(sizes, m.Nodes*10)
	if a != b {
		t.Errorf("requests beyond machine size should be capped: %v vs %v", a, b)
	}
}

func TestSchedulerImmediateGrant(t *testing.T) {
	clock := sim.NewClock()
	s := NewScheduler(clock, anvil())
	granted := false
	if err := s.Request(16, func() { granted = true }); err != nil {
		t.Fatal(err)
	}
	if err := clock.Run(); err != nil {
		t.Fatal(err)
	}
	if !granted {
		t.Fatal("grant never fired")
	}
	if s.FreeNodes() != anvil().Nodes-16 {
		t.Fatalf("free = %d", s.FreeNodes())
	}
}

func TestSchedulerFIFOAndRelease(t *testing.T) {
	clock := sim.NewClock()
	m := &Machine{Name: "tiny", Partition: "p", Nodes: 4, CoresPerNode: 8,
		CompressMBpsPerCore: 10, DecompressMBpsPerCore: 10, PFSWriteMBps: 100, IOKneeNodes: 2}
	s := NewScheduler(clock, m)
	var order []int
	if err := s.Request(4, func() {
		order = append(order, 1)
		clock.After(10, func() { s.Release(4) })
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Request(2, func() { order = append(order, 2) }); err != nil {
		t.Fatal(err)
	}
	if err := s.Request(2, func() { order = append(order, 3) }); err != nil {
		t.Fatal(err)
	}
	if err := clock.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("grant order = %v", order)
	}
	if clock.Now() < 10 {
		t.Fatalf("second grant should wait for release: now=%v", clock.Now())
	}
}

func TestSchedulerRejects(t *testing.T) {
	clock := sim.NewClock()
	s := NewScheduler(clock, anvil())
	if err := s.Request(0, func() {}); err == nil {
		t.Error("zero nodes must error")
	}
	if err := s.Request(anvil().Nodes+1, func() {}); err == nil {
		t.Error("oversized request must error")
	}
}

func TestWaitModel(t *testing.T) {
	clock := sim.NewClock()
	s := NewScheduler(clock, anvil())
	s.SetWaitModel(42, 30, 0, 0)
	var grantTime float64 = -1
	if err := s.Request(8, func() { grantTime = clock.Now() }); err != nil {
		t.Fatal(err)
	}
	if err := clock.Run(); err != nil {
		t.Fatal(err)
	}
	if grantTime <= 0 {
		t.Fatalf("extra wait was not applied: grant at %v", grantTime)
	}
	// Disabled model grants immediately.
	clock2 := sim.NewClock()
	s2 := NewScheduler(clock2, anvil())
	s2.SetWaitModel(42, 0, 0, 0)
	var g2 float64 = -1
	if err := s2.Request(8, func() { g2 = clock2.Now() }); err != nil {
		t.Fatal(err)
	}
	if err := clock2.Run(); err != nil {
		t.Fatal(err)
	}
	if g2 != 0 {
		t.Fatalf("no-wait model granted at %v", g2)
	}
}

func TestWaitModelDeterministic(t *testing.T) {
	run := func() float64 {
		clock := sim.NewClock()
		s := NewScheduler(clock, anvil())
		s.SetWaitModel(7, 60, 0.3, 600)
		var at float64
		_ = s.Request(4, func() { at = clock.Now() })
		_ = clock.Run()
		return at
	}
	if run() != run() {
		t.Fatal("wait model not deterministic")
	}
}

func TestKNLSlowerThanMilan(t *testing.T) {
	ms := Standard()
	sizes := uniformSizes(64, 100e6)
	knl := ms["BebopKNL"].CompressTime(sizes, 1)
	anv := ms["Anvil"].CompressTime(sizes, 1)
	if knl <= anv {
		t.Errorf("KNL (%v) should be slower than Anvil (%v)", knl, anv)
	}
}
