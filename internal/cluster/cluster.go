// Package cluster models the supercomputers of the paper's testbed
// (Table III): node/core inventories, calibrated per-core compression and
// decompression throughputs, a parallel-filesystem contention model that
// reproduces Fig 9's decompression slowdown, and a batch scheduler with
// node-waiting behaviour on the shared virtual clock.
package cluster

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"ocelot/internal/sim"
)

// Machine describes one HPC system partition.
type Machine struct {
	// Name, e.g. "Anvil".
	Name string
	// Partition, e.g. "wholenode".
	Partition string
	// Nodes available in the partition.
	Nodes int
	// CoresPerNode per compute node.
	CoresPerNode int
	// CompressMBpsPerCore is the calibrated single-core SZ compression
	// throughput in MB of raw data per second.
	CompressMBpsPerCore float64
	// DecompressMBpsPerCore is the calibrated single-core decompression
	// throughput.
	DecompressMBpsPerCore float64
	// PFSWriteMBps is the parallel filesystem's aggregate write bandwidth
	// with one writer node.
	PFSWriteMBps float64
	// IOKneeNodes is the writer-node count at which aggregate PFS write
	// bandwidth peaks; beyond it, contention degrades throughput (Fig 9).
	IOKneeNodes float64
}

// Validate checks machine parameters.
func (m *Machine) Validate() error {
	if m.Nodes <= 0 || m.CoresPerNode <= 0 {
		return fmt.Errorf("cluster: %s: invalid node/core counts", m.Name)
	}
	if m.CompressMBpsPerCore <= 0 || m.DecompressMBpsPerCore <= 0 {
		return fmt.Errorf("cluster: %s: invalid throughput", m.Name)
	}
	if m.PFSWriteMBps <= 0 || m.IOKneeNodes <= 0 {
		return fmt.Errorf("cluster: %s: invalid PFS model", m.Name)
	}
	return nil
}

// pfsWriteBandwidth returns the aggregate write bandwidth with n writer
// nodes: rises roughly linearly to the knee, then collapses under
// contention — the cubic tail matches the paper's observation that CESM
// decompression took 68.7s on 4 Cori nodes but over 5 minutes on 16.
func (m *Machine) pfsWriteBandwidth(nodes int) float64 {
	n := float64(nodes)
	return m.PFSWriteMBps * n / (1 + math.Pow(n/m.IOKneeNodes, 3))
}

// CompressTime models the wall time to compress a set of files (sizes in
// raw bytes) with `nodes` nodes. Each core handles whole files (the paper's
// file-parallel scheme); parallelism saturates at the file count.
func (m *Machine) CompressTime(sizes []int64, nodes int) float64 {
	return m.parallelTime(sizes, nodes, m.CompressMBpsPerCore, false)
}

// DecompressTime models the wall time to decompress files and write the raw
// bytes back to the parallel filesystem; writes contend beyond the knee.
func (m *Machine) DecompressTime(sizes []int64, nodes int) float64 {
	return m.parallelTime(sizes, nodes, m.DecompressMBpsPerCore, true)
}

func (m *Machine) parallelTime(sizes []int64, nodes int, mbpsPerCore float64, withIO bool) float64 {
	if len(sizes) == 0 || nodes <= 0 {
		return 0
	}
	if nodes > m.Nodes {
		nodes = m.Nodes
	}
	cores := nodes * m.CoresPerNode
	if cores > len(sizes) {
		cores = len(sizes)
	}
	costs := make([]float64, len(sizes))
	var total float64
	for i, s := range sizes {
		costs[i] = float64(s) / 1e6 / mbpsPerCore
		total += float64(s) / 1e6
	}
	cpuTime := lptMakespan(costs, cores)
	if !withIO {
		return cpuTime
	}
	ioTime := total / m.pfsWriteBandwidth(nodes)
	if ioTime > cpuTime {
		return ioTime
	}
	return cpuTime
}

// lptMakespan is longest-processing-time-first list scheduling, using a
// min-heap of worker loads so large inventories stay O(n log w).
func lptMakespan(costs []float64, workers int) float64 {
	if workers <= 0 {
		workers = 1
	}
	if workers > len(costs) {
		workers = len(costs)
	}
	if workers == 0 {
		return 0
	}
	sorted := make([]float64, len(costs))
	copy(sorted, costs)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	load := loadHeap(make([]float64, workers))
	for _, c := range sorted {
		// Pop-min, add, push-down.
		load[0] += c
		load.siftDown(0)
	}
	var mk float64
	for _, v := range load {
		if v > mk {
			mk = v
		}
	}
	return mk
}

// loadHeap is a minimal binary min-heap over worker loads.
type loadHeap []float64

func (h loadHeap) siftDown(i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && h[l] < h[min] {
			min = l
		}
		if r < n && h[r] < h[min] {
			min = r
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// Standard returns the calibrated testbed machines (paper Table III).
// Throughputs are calibrated so Table VIII's CPTime/DPTime columns come out
// in the right regime.
func Standard() map[string]*Machine {
	return map[string]*Machine{
		"Anvil": {
			Name: "Anvil", Partition: "wholenode",
			Nodes: 750, CoresPerNode: 128,
			CompressMBpsPerCore: 25, DecompressMBpsPerCore: 80,
			PFSWriteMBps: 12000, IOKneeNodes: 4,
		},
		"Bebop": {
			Name: "Bebop", Partition: "bdwall",
			Nodes: 664, CoresPerNode: 36,
			CompressMBpsPerCore: 22, DecompressMBpsPerCore: 55,
			PFSWriteMBps: 6000, IOKneeNodes: 8,
		},
		"BebopKNL": {
			Name: "BebopKNL", Partition: "knlall",
			Nodes: 348, CoresPerNode: 64,
			CompressMBpsPerCore: 4, DecompressMBpsPerCore: 9,
			PFSWriteMBps: 6000, IOKneeNodes: 8,
		},
		"Cori": {
			Name: "Cori", Partition: "haswell",
			Nodes: 2388, CoresPerNode: 32,
			CompressMBpsPerCore: 24, DecompressMBpsPerCore: 90,
			PFSWriteMBps: 14000, IOKneeNodes: 8,
		},
	}
}

// Scheduler is a FIFO batch scheduler over a machine's nodes on the shared
// virtual clock. An optional ExtraWait models queue delays caused by other
// users' jobs (the paper: "sometimes it took a few minutes or even hours").
type Scheduler struct {
	clock *sim.Clock
	m     *Machine
	free  int
	queue []*request
	// extraWait, when non-nil, returns additional seconds a request waits
	// even when nodes are free.
	extraWait func() float64
}

type request struct {
	nodes   int
	grant   func()
	delayed bool // extra wait already served
}

// ErrTooManyNodes is returned when a request exceeds the machine size.
var ErrTooManyNodes = errors.New("cluster: request exceeds machine nodes")

// NewScheduler creates a scheduler with all nodes free.
func NewScheduler(clock *sim.Clock, m *Machine) *Scheduler {
	return &Scheduler{clock: clock, m: m, free: m.Nodes}
}

// SetWaitModel installs a synthetic extra-wait generator. Deterministic for
// a given seed: meanSec ≤ 0 disables extra waits; spikeProb adds occasional
// long waits of spikeSec.
func (s *Scheduler) SetWaitModel(seed int64, meanSec, spikeProb, spikeSec float64) {
	if meanSec <= 0 && spikeProb <= 0 {
		s.extraWait = nil
		return
	}
	rng := rand.New(rand.NewSource(seed))
	s.extraWait = func() float64 {
		w := 0.0
		if meanSec > 0 {
			w = rng.ExpFloat64() * meanSec
		}
		if spikeProb > 0 && rng.Float64() < spikeProb {
			w += spikeSec
		}
		return w
	}
}

// Request asks for nodes; grant runs (on the virtual clock) once they are
// allocated. FIFO order is preserved.
func (s *Scheduler) Request(nodes int, grant func()) error {
	if nodes <= 0 {
		return errors.New("cluster: non-positive node request")
	}
	if nodes > s.m.Nodes {
		return fmt.Errorf("%w: %d > %d", ErrTooManyNodes, nodes, s.m.Nodes)
	}
	r := &request{nodes: nodes, grant: grant}
	if s.extraWait != nil {
		d := s.extraWait()
		s.clock.After(d, func() {
			r.delayed = true
			s.queue = append(s.queue, r)
			s.pump()
		})
		return nil
	}
	r.delayed = true
	s.queue = append(s.queue, r)
	s.pump()
	return nil
}

// Release returns nodes to the pool.
func (s *Scheduler) Release(nodes int) {
	s.free += nodes
	if s.free > s.m.Nodes {
		s.free = s.m.Nodes
	}
	s.pump()
}

// FreeNodes reports currently free nodes.
func (s *Scheduler) FreeNodes() int { return s.free }

// QueueLength reports pending requests.
func (s *Scheduler) QueueLength() int { return len(s.queue) }

// pump grants requests in FIFO order while nodes suffice.
func (s *Scheduler) pump() {
	for len(s.queue) > 0 {
		head := s.queue[0]
		if head.nodes > s.free {
			return
		}
		s.free -= head.nodes
		s.queue = s.queue[1:]
		grant := head.grant
		s.clock.After(0, grant)
	}
}
