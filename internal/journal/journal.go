// Package journal persists a campaign's progress as a durable, append-only
// manifest so a crashed or canceled campaign can resume without redoing
// completed work. The file format is newline-delimited JSON: one record per
// state transition (begin, group packed, group sent, group acked, resume,
// done), each flushed with fsync before the campaign proceeds, so the
// journal never claims more than what durably happened. The engine treats a
// group as recoverable only once it is ACKED — packed and sent but
// unverified groups are redone on resume, which is always safe because the
// campaign's ReconDigest folds per-field digests in field order, not in
// group or completion order.
//
// Crash tolerance: a process killed mid-append leaves a torn final line;
// Load tolerates exactly that (the unfinished record is discarded, matching
// what the fsync contract guarantees) but returns ErrCorrupt for anything
// else — bad JSON mid-file, references to unknown groups or fields,
// conflicting duplicate records — so a damaged journal is reported, never
// silently half-trusted.
package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"

	"ocelot/internal/obs"
)

// Record kinds, stored in Entry.T.
const (
	// KindBegin opens a manifest: spec hash, per-field plan, grouping.
	KindBegin = "begin"
	// KindGroup records a packed group: members, archive digest, bytes.
	KindGroup = "group"
	// KindSent records the transport accepting a group's archive.
	KindSent = "sent"
	// KindAck records a group verified end to end, with per-member
	// reconstruction digests. Acked groups are skipped on resume. An ack
	// echoes the archive digest it verified; an echo that disagrees with
	// the group record VOIDS the ack (the group is re-sent on resume)
	// rather than corrupting the manifest — a stale or tampered ack must
	// never let an unverified archive be skipped.
	KindAck = "ack"
	// KindResume marks a resumed incarnation appending after a crash.
	KindResume = "resume"
	// KindDone marks the campaign complete; nothing is missing.
	KindDone = "done"
)

// maxGroupID bounds group identifiers a manifest may reference. Real
// campaigns emit a few dozen groups; the bound exists so a crafted journal
// cannot smuggle absurd ids into resume bookkeeping.
const maxGroupID = 1 << 20

// maxFields bounds the per-field plan length. The paper's largest dataset
// has dozens of fields; the bound exists purely as a sanity cap against
// crafted manifests.
const maxFields = 1 << 16

// ErrCorrupt is wrapped by every load error caused by a damaged or
// internally inconsistent journal (as opposed to I/O failures). Callers
// branch on it with errors.Is to distinguish "journal unusable" from
// "journal unreadable".
var ErrCorrupt = errors.New("journal: corrupt manifest")

// ErrSpecMismatch is returned by Manifest.CheckSpec when a resume attempt
// presents a different campaign spec than the journal was written under.
// Resuming under a changed spec would splice incompatible halves into one
// result, so the engine refuses.
var ErrSpecMismatch = errors.New("journal: spec hash mismatch")

// FieldPlan is one field's pinned compression decision as recorded at
// begin time. On resume the engine re-executes missing fields under
// exactly these settings — never a fresh plan — so the resumed halves of a
// campaign are byte-compatible with the completed ones.
type FieldPlan struct {
	// Name is the field's archive member name (unique per campaign).
	Name string `json:"name"`
	// RelEB is the field's relative error bound.
	RelEB float64 `json:"relEB"`
	// Predictor is the sz predictor ordinal (0 = campaign default).
	Predictor int `json:"predictor,omitempty"`
	// Codec is the registry codec name ("" = campaign default).
	Codec string `json:"codec,omitempty"`
}

// Entry is one NDJSON record. A single struct covers every kind; unused
// fields stay at their zero values and are omitted on the wire.
type Entry struct {
	// T is the record kind (KindBegin .. KindDone).
	T string `json:"t"`

	// SpecHash fingerprints the campaign spec + dataset (begin records).
	SpecHash string `json:"specHash,omitempty"`
	// Engine is the engine name the campaign ran under (begin records).
	Engine string `json:"engine,omitempty"`
	// Strategy is the grouping strategy ordinal (begin records).
	Strategy int `json:"strategy,omitempty"`
	// GroupParam is the grouping parameter (begin records).
	GroupParam int64 `json:"groupParam,omitempty"`
	// Fields is the per-field pinned plan (begin records).
	Fields []FieldPlan `json:"fields,omitempty"`
	// Meta carries caller bookkeeping (e.g. the serve daemon's original
	// submit request) so an external recovery pass can reconstruct the
	// campaign without out-of-band state (begin records).
	Meta map[string]string `json:"meta,omitempty"`

	// Group is the group id (group/sent/ack records).
	Group int `json:"group,omitempty"`
	// Members lists the field indices packed into the group (group records).
	Members []int `json:"members,omitempty"`
	// Bytes is the packed archive size (group records).
	Bytes int64 `json:"bytes,omitempty"`
	// Archive is the FNV-64a digest of the archive bytes, hex. Group
	// records record it; ack records echo it so a mismatched (voided) ack
	// is distinguishable from a verified one.
	Archive string `json:"archive,omitempty"`
	// CRC is the CRC-32C of the integrity frame's payload, hex (group
	// records; omitted when the campaign ships unframed archives).
	CRC string `json:"crc,omitempty"`
	// Digests are the per-member reconstruction digests, hex, parallel to
	// the group's Members (ack records).
	Digests []string `json:"digests,omitempty"`
}

// GroupState is one group's accumulated journal state.
type GroupState struct {
	// ID is the group id (unique within the campaign, monotone per
	// incarnation).
	ID int
	// Members are the field indices packed into this group.
	Members []int
	// Bytes is the packed archive size.
	Bytes int64
	// ArchiveDigest is the FNV-64a digest of the archive bytes.
	ArchiveDigest uint64
	// FrameCRC is the CRC-32C of the integrity frame's payload (zero when
	// the campaign shipped unframed archives).
	FrameCRC uint32
	// Sent reports the transport accepted the archive.
	Sent bool
	// Acked reports the group verified end to end; acked groups are
	// skipped on resume.
	Acked bool
	// Digests are per-member reconstruction digests (set when Acked).
	Digests []uint64
}

// Manifest is the replayed state of one campaign journal.
type Manifest struct {
	// SpecHash fingerprints the spec + dataset the journal was written under.
	SpecHash string
	// Engine is the engine name recorded at begin.
	Engine string
	// Strategy and GroupParam are the grouping knobs recorded at begin.
	Strategy   int
	GroupParam int64
	// Fields is the pinned per-field plan recorded at begin.
	Fields []FieldPlan
	// Meta is the caller bookkeeping recorded at begin.
	Meta map[string]string
	// Groups maps group id → state for every group the journal mentions.
	Groups map[int]*GroupState
	// Done reports the campaign completed (nothing to resume).
	Done bool
	// Resumes counts resumed incarnations recorded in the journal.
	Resumes int
}

// corruptf builds an ErrCorrupt-wrapped error.
func corruptf(format string, args ...interface{}) error {
	return fmt.Errorf("%w: "+format, append([]interface{}{ErrCorrupt}, args...)...)
}

// Parse replays a journal's raw bytes into a Manifest. A torn final line
// (no trailing newline — the normal artifact of a crash mid-append) is
// discarded; every other inconsistency returns an error wrapping
// ErrCorrupt. Parse never allocates proportionally to anything but the
// input length, so a crafted journal cannot balloon memory.
func Parse(data []byte) (*Manifest, error) {
	m := &Manifest{Groups: make(map[int]*GroupState)}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(nil, len(data)+1)
	torn := len(data) > 0 && data[len(data)-1] != '\n'
	var lines [][]byte
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		lines = append(lines, append([]byte(nil), line...))
	}
	if err := sc.Err(); err != nil {
		return nil, corruptf("scan: %v", err)
	}
	if torn && len(lines) > 0 {
		lines = lines[:len(lines)-1]
	}
	if len(lines) == 0 {
		return nil, corruptf("no complete records")
	}
	for n, line := range lines {
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, corruptf("record %d: %v", n, err)
		}
		if err := m.apply(&e, n); err != nil {
			return nil, err
		}
	}
	if m.SpecHash == "" {
		return nil, corruptf("missing begin record")
	}
	return m, nil
}

// apply folds one record into the manifest.
func (m *Manifest) apply(e *Entry, n int) error {
	switch e.T {
	case KindBegin:
		if m.SpecHash != "" {
			if e.SpecHash != m.SpecHash {
				return corruptf("record %d: second begin with different spec hash", n)
			}
			return nil // idempotent duplicate
		}
		if e.SpecHash == "" {
			return corruptf("record %d: begin without spec hash", n)
		}
		if len(e.Fields) == 0 || len(e.Fields) > maxFields {
			return corruptf("record %d: begin with %d fields", n, len(e.Fields))
		}
		for i, fp := range e.Fields {
			if fp.Name == "" {
				return corruptf("record %d: field %d unnamed", n, i)
			}
		}
		m.SpecHash = e.SpecHash
		m.Engine = e.Engine
		m.Strategy = e.Strategy
		m.GroupParam = e.GroupParam
		m.Fields = e.Fields
		m.Meta = e.Meta
		return nil
	case KindGroup:
		if m.SpecHash == "" {
			return corruptf("record %d: group before begin", n)
		}
		if e.Group < 0 || e.Group > maxGroupID {
			return corruptf("record %d: group id %d out of range", n, e.Group)
		}
		if len(e.Members) == 0 || len(e.Members) > len(m.Fields) {
			return corruptf("record %d: group %d has %d members for %d fields", n, e.Group, len(e.Members), len(m.Fields))
		}
		for _, idx := range e.Members {
			if idx < 0 || idx >= len(m.Fields) {
				return corruptf("record %d: group %d member %d out of range", n, e.Group, idx)
			}
		}
		if e.Bytes < 0 {
			return corruptf("record %d: group %d has negative size", n, e.Group)
		}
		digest, err := parseDigest(e.Archive)
		if err != nil {
			return corruptf("record %d: group %d archive digest: %v", n, e.Group, err)
		}
		var frameCRC uint32
		if e.CRC != "" {
			v, err := strconv.ParseUint(e.CRC, 16, 32)
			if err != nil {
				return corruptf("record %d: group %d frame crc: %v", n, e.Group, err)
			}
			frameCRC = uint32(v)
		}
		if prev, ok := m.Groups[e.Group]; ok {
			if prev.ArchiveDigest != digest || prev.FrameCRC != frameCRC || prev.Bytes != e.Bytes || !equalInts(prev.Members, e.Members) {
				return corruptf("record %d: group %d re-recorded with different contents", n, e.Group)
			}
			return nil // idempotent duplicate
		}
		m.Groups[e.Group] = &GroupState{
			ID:            e.Group,
			Members:       e.Members,
			Bytes:         e.Bytes,
			ArchiveDigest: digest,
			FrameCRC:      frameCRC,
		}
		return nil
	case KindSent:
		g, ok := m.Groups[e.Group]
		if !ok {
			return corruptf("record %d: sent for unknown group %d", n, e.Group)
		}
		g.Sent = true
		return nil
	case KindAck:
		g, ok := m.Groups[e.Group]
		if !ok {
			return corruptf("record %d: ack for unknown group %d", n, e.Group)
		}
		if e.Archive != "" {
			echo, err := parseDigest(e.Archive)
			if err != nil {
				return corruptf("record %d: ack for group %d archive echo: %v", n, e.Group, err)
			}
			if echo != g.ArchiveDigest {
				// The ack verified a different archive than the group record
				// describes — void it (leave the group unacked so resume
				// re-sends it) instead of trusting either side. Legacy
				// echo-less acks skip this check.
				return nil
			}
		}
		if len(e.Digests) != len(g.Members) {
			return corruptf("record %d: ack for group %d has %d digests for %d members", n, e.Group, len(e.Digests), len(g.Members))
		}
		digests := make([]uint64, len(e.Digests))
		for i, d := range e.Digests {
			v, err := parseDigest(d)
			if err != nil {
				return corruptf("record %d: ack digest %d: %v", n, i, err)
			}
			digests[i] = v
		}
		if g.Acked && !equalUints(g.Digests, digests) {
			return corruptf("record %d: group %d re-acked with different digests", n, e.Group)
		}
		g.Acked = true
		g.Digests = digests
		return nil
	case KindResume:
		if m.SpecHash == "" {
			return corruptf("record %d: resume before begin", n)
		}
		m.Resumes++
		return nil
	case KindDone:
		if m.SpecHash == "" {
			return corruptf("record %d: done before begin", n)
		}
		m.Done = true
		return nil
	default:
		return corruptf("record %d: unknown kind %q", n, e.T)
	}
}

// Load reads and replays a journal file.
func Load(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// CheckSpec compares the manifest's recorded spec hash against the hash of
// the spec a resume attempt is about to run, returning ErrSpecMismatch on
// disagreement.
func (m *Manifest) CheckSpec(specHash string) error {
	if m.SpecHash != specHash {
		return fmt.Errorf("%w: journal %s vs campaign %s", ErrSpecMismatch, m.SpecHash, specHash)
	}
	return nil
}

// DoneFields reports, per field index, whether an acked group already
// covers the field, along with the recorded reconstruction digest.
func (m *Manifest) DoneFields() (done []bool, digests []uint64) {
	done = make([]bool, len(m.Fields))
	digests = make([]uint64, len(m.Fields))
	for _, g := range sortedGroups(m.Groups) {
		if !g.Acked {
			continue
		}
		for i, idx := range g.Members {
			done[idx] = true
			digests[idx] = g.Digests[i]
		}
	}
	return done, digests
}

// AckedGroups counts groups verified end to end.
func (m *Manifest) AckedGroups() int {
	n := 0
	for _, g := range m.Groups {
		if g.Acked {
			n++
		}
	}
	return n
}

// AckedBytes sums the archive bytes of acked groups — the work a resume
// does not redo.
func (m *Manifest) AckedBytes() int64 {
	var b int64
	for _, g := range m.Groups {
		if g.Acked {
			b += g.Bytes
		}
	}
	return b
}

// MaxGroupID returns the largest recorded group id, or -1 for none. A
// resumed incarnation numbers its groups from MaxGroupID()+1 so ids stay
// unique across incarnations.
func (m *Manifest) MaxGroupID() int {
	max := -1
	for id := range m.Groups {
		if id > max {
			max = id
		}
	}
	return max
}

// SortedGroups returns the manifest's groups in id order — deterministic
// iteration for replaying acked state into a fresh journal or reporting.
func (m *Manifest) SortedGroups() []*GroupState { return sortedGroups(m.Groups) }

// sortedGroups returns the groups in id order so replay-derived state is
// deterministic regardless of map iteration.
func sortedGroups(groups map[int]*GroupState) []*GroupState {
	out := make([]*GroupState, 0, len(groups))
	for _, g := range groups {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// parseDigest decodes a 64-bit hex digest.
func parseDigest(s string) (uint64, error) {
	if s == "" {
		return 0, errors.New("empty digest")
	}
	if len(s) > 16 {
		return 0, fmt.Errorf("digest %q too long", s)
	}
	return strconv.ParseUint(s, 16, 64)
}

// FormatDigest encodes a 64-bit digest the way the journal stores it.
func FormatDigest(d uint64) string { return strconv.FormatUint(d, 16) }

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalUints(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Writer appends records to a journal file with durability: every append
// is written and fsynced before returning, so the journal never claims a
// transition the disk has not seen. A Writer is safe for concurrent use —
// the campaign engine's transfer and verify stages append from different
// goroutines.
type Writer struct {
	mu   sync.Mutex
	f    *os.File
	path string
	// records/fsyncs count appends when SetMetrics installed a registry
	// (nil = off; Append pays a pointer check per record).
	records *obs.Counter
	fsyncs  *obs.Counter
}

// SetMetrics installs a metrics registry: every subsequent Append counts
// one journal_records_total and one journal_fsyncs_total. Nil reg resets
// to off.
func (w *Writer) SetMetrics(reg *obs.Registry) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.records = reg.Counter("journal_records_total")
	w.fsyncs = reg.Counter("journal_fsyncs_total")
}

// Create starts a fresh journal at path, truncating any previous file and
// fsyncing the parent directory so the file itself survives a crash.
func Create(path string) (*Writer, error) {
	if dir := filepath.Dir(path); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, err
	}
	return &Writer{f: f, path: path}, nil
}

// OpenAppend opens an existing journal for a resumed incarnation to extend.
func OpenAppend(path string) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return &Writer{f: f, path: path}, nil
}

// syncDir fsyncs a directory so a freshly created entry is durable.
func syncDir(dir string) error {
	if dir == "" {
		dir = "."
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Path reports the file the writer appends to.
func (w *Writer) Path() string { return w.path }

// Append durably writes one record: marshal, newline-terminate, write,
// fsync. The record is visible to Load only after Append returns nil.
func (w *Writer) Append(e Entry) error {
	buf, err := json.Marshal(e)
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return errors.New("journal: writer closed")
	}
	if _, err := w.f.Write(buf); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.records.Inc()
	w.fsyncs.Inc()
	return nil
}

// Begin records the campaign's identity and pinned plan.
func (w *Writer) Begin(specHash, engine string, strategy int, groupParam int64, fields []FieldPlan, meta map[string]string) error {
	return w.Append(Entry{T: KindBegin, SpecHash: specHash, Engine: engine,
		Strategy: strategy, GroupParam: groupParam, Fields: fields, Meta: meta})
}

// Group records a packed group before its archive is offered to the
// transport. frameCRC is the CRC-32C of the integrity frame's payload
// (zero when the campaign ships unframed archives; the field is omitted
// from the record so unframed journals keep their legacy shape).
func (w *Writer) Group(id int, members []int, archiveDigest uint64, frameCRC uint32, bytes int64) error {
	e := Entry{T: KindGroup, Group: id, Members: members,
		Archive: FormatDigest(archiveDigest), Bytes: bytes}
	if frameCRC != 0 {
		e.CRC = strconv.FormatUint(uint64(frameCRC), 16)
	}
	return w.Append(e)
}

// Sent records the transport accepting a group's archive.
func (w *Writer) Sent(id int) error {
	return w.Append(Entry{T: KindSent, Group: id})
}

// Ack records a group verified end to end with its per-member
// reconstruction digests (parallel to the group's recorded members).
// archiveDigest echoes the digest of the archive that verified; replay
// voids an ack whose echo disagrees with the group record, so a
// tampered journal can never skip an unverified group on resume.
func (w *Writer) Ack(id int, archiveDigest uint64, digests []uint64) error {
	hex := make([]string, len(digests))
	for i, d := range digests {
		hex[i] = FormatDigest(d)
	}
	return w.Append(Entry{T: KindAck, Group: id,
		Archive: FormatDigest(archiveDigest), Digests: hex})
}

// Resume records a resumed incarnation taking over the journal.
func (w *Writer) Resume() error { return w.Append(Entry{T: KindResume}) }

// Done records campaign completion.
func (w *Writer) Done() error { return w.Append(Entry{T: KindDone}) }

// Close releases the underlying file. Records already appended stay
// durable; Append after Close fails.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}
