package journal

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testFields() []FieldPlan {
	return []FieldPlan{
		{Name: "a.sz", RelEB: 1e-3},
		{Name: "b.sz", RelEB: 1e-3, Predictor: 2, Codec: "szx"},
		{Name: "c.sz", RelEB: 1e-4},
		{Name: "d.sz", RelEB: 1e-3},
	}
}

// writeSample journals a 2-group campaign where only group 0 is acked.
func writeSample(t *testing.T, path string) {
	t.Helper()
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Begin("feedbeef", "pipelined", 1, 2, testFields(),
		map[string]string{"tenant": "climate"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Group(0, []int{0, 2}, 0xabc, 0xc0ffee, 1000); err != nil {
		t.Fatal(err)
	}
	if err := w.Group(1, []int{1, 3}, 0xdef, 0, 2000); err != nil {
		t.Fatal(err)
	}
	if err := w.Sent(0); err != nil {
		t.Fatal(err)
	}
	if err := w.Ack(0, 0xabc, []uint64{11, 22}); err != nil {
		t.Fatal(err)
	}
	if err := w.Sent(1); err != nil {
		t.Fatal(err)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.ocjl")
	writeSample(t, path)
	m, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.SpecHash != "feedbeef" || m.Engine != "pipelined" || m.GroupParam != 2 {
		t.Fatalf("begin state mangled: %+v", m)
	}
	if m.Meta["tenant"] != "climate" {
		t.Fatalf("meta lost: %v", m.Meta)
	}
	if len(m.Groups) != 2 || m.Done {
		t.Fatalf("groups=%d done=%v", len(m.Groups), m.Done)
	}
	if g := m.Groups[0]; !g.Acked || !g.Sent || g.Bytes != 1000 || g.ArchiveDigest != 0xabc || g.FrameCRC != 0xc0ffee {
		t.Fatalf("group 0: %+v", g)
	}
	if g := m.Groups[1]; g.Acked || !g.Sent {
		t.Fatalf("group 1: %+v", g)
	}
	done, digests := m.DoneFields()
	wantDone := []bool{true, false, true, false}
	for i, w := range wantDone {
		if done[i] != w {
			t.Fatalf("done[%d]=%v want %v", i, done[i], w)
		}
	}
	if digests[0] != 11 || digests[2] != 22 {
		t.Fatalf("digests: %v", digests)
	}
	if m.AckedGroups() != 1 || m.AckedBytes() != 1000 || m.MaxGroupID() != 1 {
		t.Fatalf("acked=%d bytes=%d max=%d", m.AckedGroups(), m.AckedBytes(), m.MaxGroupID())
	}
}

func TestJournalTornTailTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.ocjl")
	writeSample(t, path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop the file mid-way through the final record: the crash artifact
	// Load must shrug off. The acked state of earlier records survives.
	torn := data[:len(data)-3]
	m, err := Parse(torn)
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	if m.Groups[1] == nil || m.Groups[1].Sent {
		t.Fatalf("torn final sent record should be discarded: %+v", m.Groups[1])
	}
	if !m.Groups[0].Acked {
		t.Fatal("earlier acked state lost")
	}
}

func TestJournalCorruptTyped(t *testing.T) {
	valid := `{"t":"begin","specHash":"ff","fields":[{"name":"a.sz","relEB":0.001}]}` + "\n"
	cases := map[string]string{
		"bad json mid-file":  valid + "{nope}\n" + `{"t":"done"}` + "\n",
		"no begin":           `{"t":"done"}` + "\n",
		"empty":              "",
		"member range":       valid + `{"t":"group","group":0,"members":[5],"archive":"1"}` + "\n",
		"too many members":   valid + `{"t":"group","group":0,"members":[0,0],"archive":"1"}` + "\n",
		"huge group id":      valid + `{"t":"group","group":99999999,"members":[0],"archive":"1"}` + "\n",
		"negative group id":  valid + `{"t":"group","group":-1,"members":[0],"archive":"1"}` + "\n",
		"sent unknown group": valid + `{"t":"sent","group":7}` + "\n",
		"ack digest count":   valid + `{"t":"group","group":0,"members":[0],"archive":"1"}` + "\n" + `{"t":"ack","group":0,"digests":["1","2"]}` + "\n",
		"bad digest":         valid + `{"t":"group","group":0,"members":[0],"archive":"zz"}` + "\n",
		"unknown kind":       valid + `{"t":"frob"}` + "\n",
		"conflicting begin":  valid + `{"t":"begin","specHash":"00","fields":[{"name":"a.sz","relEB":0.001}]}` + "\n",
		"group re-recorded":  valid + `{"t":"group","group":0,"members":[0],"archive":"1"}` + "\n" + `{"t":"group","group":0,"members":[0],"archive":"2"}` + "\n",
	}
	for name, text := range cases {
		if _, err := Parse([]byte(text)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: want ErrCorrupt, got %v", name, err)
		}
	}
}

func TestJournalIdempotentDuplicates(t *testing.T) {
	text := `{"t":"begin","specHash":"ff","fields":[{"name":"a.sz","relEB":0.001}]}` + "\n" +
		`{"t":"group","group":0,"members":[0],"archive":"1","bytes":10}` + "\n" +
		`{"t":"group","group":0,"members":[0],"archive":"1","bytes":10}` + "\n" +
		`{"t":"ack","group":0,"digests":["1"]}` + "\n" +
		`{"t":"ack","group":0,"digests":["1"]}` + "\n"
	m, err := Parse([]byte(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Groups) != 1 || !m.Groups[0].Acked {
		t.Fatalf("duplicate records mis-folded: %+v", m.Groups)
	}
}

func TestJournalSpecMismatch(t *testing.T) {
	m := &Manifest{SpecHash: "aa"}
	if err := m.CheckSpec("aa"); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckSpec("bb"); !errors.Is(err, ErrSpecMismatch) {
		t.Fatalf("want ErrSpecMismatch, got %v", err)
	}
}

func TestJournalResumeAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.ocjl")
	writeSample(t, path)
	w, err := OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Resume(); err != nil {
		t.Fatal(err)
	}
	if err := w.Group(2, []int{1, 3}, 0x123, 0, 1500); err != nil {
		t.Fatal(err)
	}
	if err := w.Ack(2, 0x123, []uint64{33, 44}); err != nil {
		t.Fatal(err)
	}
	if err := w.Done(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Entry{T: KindDone}); err == nil {
		t.Fatal("append after close should fail")
	}
	m, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Done || m.Resumes != 1 || m.MaxGroupID() != 2 {
		t.Fatalf("done=%v resumes=%d max=%d", m.Done, m.Resumes, m.MaxGroupID())
	}
	done, _ := m.DoneFields()
	for i, d := range done {
		if !d {
			t.Fatalf("field %d not covered after resume", i)
		}
	}
}

func TestJournalAckEchoVoidsMismatch(t *testing.T) {
	begin := `{"t":"begin","specHash":"ff","fields":[{"name":"a.sz","relEB":0.001}]}` + "\n"
	group := `{"t":"group","group":0,"members":[0],"archive":"abc","crc":"c0ffee","bytes":10}` + "\n"

	// Mismatched echo: the ack is voided, not an error — the group stays
	// unacked so a resume re-sends it.
	m, err := Parse([]byte(begin + group + `{"t":"ack","group":0,"archive":"dead","digests":["1"]}` + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Groups[0].Acked {
		t.Fatal("mismatched-echo ack should be voided")
	}

	// Matching echo acks normally.
	m, err = Parse([]byte(begin + group + `{"t":"ack","group":0,"archive":"abc","digests":["1"]}` + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !m.Groups[0].Acked || m.Groups[0].FrameCRC != 0xc0ffee {
		t.Fatalf("matching-echo ack rejected: %+v", m.Groups[0])
	}

	// Legacy echo-less acks are still accepted.
	m, err = Parse([]byte(begin + group + `{"t":"ack","group":0,"digests":["1"]}` + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !m.Groups[0].Acked {
		t.Fatal("legacy echo-less ack rejected")
	}

	// A voided ack after a good one leaves the good ack intact.
	m, err = Parse([]byte(begin + group +
		`{"t":"ack","group":0,"archive":"abc","digests":["1"]}` + "\n" +
		`{"t":"ack","group":0,"archive":"dead","digests":["9"]}` + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !m.Groups[0].Acked || m.Groups[0].Digests[0] != 1 {
		t.Fatalf("voided duplicate clobbered good ack: %+v", m.Groups[0])
	}
}

func TestJournalCorruptIntegrityFields(t *testing.T) {
	begin := `{"t":"begin","specHash":"ff","fields":[{"name":"a.sz","relEB":0.001}]}` + "\n"
	group := `{"t":"group","group":0,"members":[0],"archive":"abc","crc":"c0ffee","bytes":10}` + "\n"
	cases := map[string]string{
		"bad frame crc": begin + `{"t":"group","group":0,"members":[0],"archive":"abc","crc":"zz"}` + "\n",
		"oversized crc": begin + `{"t":"group","group":0,"members":[0],"archive":"abc","crc":"fffffffff"}` + "\n",
		"bad ack echo":  begin + group + `{"t":"ack","group":0,"archive":"zz","digests":["1"]}` + "\n",
		"crc conflict":  begin + group + `{"t":"group","group":0,"members":[0],"archive":"abc","crc":"beef","bytes":10}` + "\n",
	}
	for name, text := range cases {
		if _, err := Parse([]byte(text)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: want ErrCorrupt, got %v", name, err)
		}
	}
}

func TestJournalDigestFormat(t *testing.T) {
	for _, v := range []uint64{0, 1, 0xdeadbeef, ^uint64(0)} {
		got, err := parseDigest(FormatDigest(v))
		if err != nil || got != v {
			t.Fatalf("digest %x round-trip: got %x err %v", v, got, err)
		}
	}
	if _, err := parseDigest(strings.Repeat("f", 17)); err == nil {
		t.Fatal("oversized digest accepted")
	}
}
