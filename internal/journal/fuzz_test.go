package journal

import (
	"errors"
	"testing"
)

// FuzzJournalManifest feeds arbitrary bytes — seeded with valid manifests,
// truncations, corrupt digests, and crafted huge counts — through Parse.
// The invariant: Parse returns a Manifest or an error wrapping ErrCorrupt;
// it never panics and never allocates beyond the input's own footprint
// (crafted counts must be rejected by validation, not trusted into
// allocations — the same discipline ocelotvet's alloccap enforces on the
// stream decoders).
func FuzzJournalManifest(f *testing.F) {
	begin := `{"t":"begin","specHash":"feedbeef","engine":"pipelined","strategy":1,"groupParam":4,"fields":[{"name":"a.sz","relEB":0.001},{"name":"b.sz","relEB":0.0001,"predictor":2,"codec":"szx"}]}` + "\n"
	group := `{"t":"group","group":0,"members":[0,1],"bytes":1234,"archive":"abc123"}` + "\n"
	full := begin + group +
		`{"t":"sent","group":0}` + "\n" +
		`{"t":"ack","group":0,"digests":["11","22"]}` + "\n" +
		`{"t":"done"}` + "\n"
	f.Add([]byte(full))
	f.Add([]byte(begin))
	f.Add([]byte(full[:len(full)-9])) // torn tail
	f.Add([]byte(begin + `{"t":"group","group":0,"members":[0,1],"archive":"zznotahex"}` + "\n"))
	f.Add([]byte(begin + `{"t":"group","group":1073741824,"members":[0],"archive":"1"}` + "\n"))
	f.Add([]byte(begin + `{"t":"ack","group":0,"digests":["1"]}` + "\n"))
	f.Add([]byte(`{"t":"begin","specHash":"x","fields":[]}` + "\n"))
	f.Add([]byte("{\"t\":\"begin\"\xff\n"))
	f.Add([]byte("\n\n\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return // bound fuzz memory, not the parser
		}
		m, err := Parse(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("non-typed parse error: %v", err)
			}
			return
		}
		if m.SpecHash == "" || len(m.Fields) == 0 {
			t.Fatalf("accepted manifest without begin state: %+v", m)
		}
		// Every accepted group must pass the structural invariants resume
		// relies on.
		for id, g := range m.Groups {
			if id != g.ID || len(g.Members) == 0 || len(g.Members) > len(m.Fields) {
				t.Fatalf("group %d structurally invalid: %+v", id, g)
			}
			for _, idx := range g.Members {
				if idx < 0 || idx >= len(m.Fields) {
					t.Fatalf("group %d member %d out of range", id, idx)
				}
			}
			if g.Acked && len(g.Digests) != len(g.Members) {
				t.Fatalf("group %d acked with %d digests", id, len(g.Digests))
			}
		}
		done, digests := m.DoneFields()
		if len(done) != len(m.Fields) || len(digests) != len(m.Fields) {
			t.Fatalf("DoneFields shape mismatch")
		}
	})
}
