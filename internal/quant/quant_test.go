package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZeroResidual(t *testing.T) {
	q := New(0.01, 512)
	code, rec, ok := q.Quantize(5.0, 5.0)
	if !ok {
		t.Fatal("zero residual should quantize")
	}
	if code != q.ZeroCode() {
		t.Fatalf("code = %d want %d", code, q.ZeroCode())
	}
	if rec != 5.0 {
		t.Fatalf("rec = %v want 5.0", rec)
	}
}

func TestErrorBoundRespected(t *testing.T) {
	q := New(0.1, 512)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 10000; i++ {
		val := rng.NormFloat64() * 10
		pred := val + rng.NormFloat64()*5
		code, rec, ok := q.Quantize(val, pred)
		if !ok {
			continue
		}
		if code == EscapeCode {
			t.Fatalf("ok=true but code is escape")
		}
		if math.Abs(rec-val) > q.ErrorBound()+1e-15 {
			t.Fatalf("error %g exceeds bound %g", math.Abs(rec-val), q.ErrorBound())
		}
		// Recover from code must equal the returned reconstruction.
		if got := q.Recover(pred, code); got != rec {
			t.Fatalf("Recover mismatch: %v vs %v", got, rec)
		}
	}
}

func TestEscapeOnLargeResidual(t *testing.T) {
	q := New(1e-6, 64)
	_, rec, ok := q.Quantize(1000.0, 0.0)
	if ok {
		t.Fatal("huge residual must escape")
	}
	if rec != 1000.0 {
		t.Fatalf("escape must return original value, got %v", rec)
	}
}

func TestNaNAndInf(t *testing.T) {
	q := New(0.1, 64)
	if _, _, ok := q.Quantize(math.NaN(), 0); ok {
		t.Fatal("NaN must escape")
	}
	if _, _, ok := q.Quantize(math.Inf(1), 0); ok {
		t.Fatal("+Inf must escape")
	}
	if _, _, ok := q.Quantize(0, math.Inf(-1)); ok {
		t.Fatal("-Inf prediction must escape")
	}
}

func TestDefaultRadius(t *testing.T) {
	q := New(0.5, 0)
	if q.Radius() != DefaultRadius {
		t.Fatalf("radius = %d want %d", q.Radius(), DefaultRadius)
	}
	if q.AlphabetSize() != 2*DefaultRadius {
		t.Fatalf("alphabet = %d", q.AlphabetSize())
	}
}

func TestCodeNeverEscapeWhenOK(t *testing.T) {
	// Residual exactly at -radius+1 boundary should produce code 1, never 0.
	q := New(0.5, 4)
	val, pred := 0.0, 3.0 // diff=-3, bin=-3, code=1
	code, _, ok := q.Quantize(val, pred)
	if !ok || code != 1 {
		t.Fatalf("code=%d ok=%v, want code=1 ok=true", code, ok)
	}
	// diff=-4 → bin=-4 = -radius → escape.
	if _, _, ok := q.Quantize(0.0, 4.0); ok {
		t.Fatal("bin at -radius must escape")
	}
}

// Property: quantize/recover never exceeds the bound for any finite inputs.
func TestQuantizeRecoverQuick(t *testing.T) {
	q := New(0.25, 1024)
	f := func(val, pred float64) bool {
		if math.IsNaN(val) || math.IsInf(val, 0) || math.IsNaN(pred) || math.IsInf(pred, 0) {
			return true
		}
		// Keep magnitudes sane to avoid float64 precision artifacts dominating.
		val = math.Mod(val, 1e6)
		pred = math.Mod(pred, 1e6)
		code, rec, ok := q.Quantize(val, pred)
		if !ok {
			return rec == val
		}
		return code > 0 && code < q.AlphabetSize() &&
			math.Abs(rec-val) <= q.ErrorBound()+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkQuantize(b *testing.B) {
	q := New(0.01, DefaultRadius)
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 4096)
	preds := make([]float64, 4096)
	for i := range vals {
		vals[i] = rng.NormFloat64()
		preds[i] = vals[i] + rng.NormFloat64()*0.05
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i & 4095
		q.Quantize(vals[j], preds[j])
	}
}
