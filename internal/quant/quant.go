// Package quant implements the linear-scale quantizer used by
// prediction-based error-bounded lossy compressors (SZ2/SZ3 style).
//
// Given a prediction for a data point, the difference between the true value
// and the prediction is mapped to an integer bin of width 2×eb. Recovering
// the value as prediction + bin×2×eb guarantees |recovered − original| ≤ eb.
// Differences that fall outside the bin range escape to a literal (code 0).
package quant

import "math"

// EscapeCode marks a value that could not be quantized within the bin range;
// such values are stored verbatim as literals.
const EscapeCode = 0

// DefaultRadius gives a 16-bit bin alphabet matching SZ's default capacity.
const DefaultRadius = 32768

// Quantizer maps prediction residuals to integer codes under an absolute
// error bound. The zero-residual bin is at code == Radius; code 0 is the
// literal escape. The total alphabet size is 2×Radius.
//
// At the DefaultRadius the full alphabet fits a 16-bit symbol, which is
// what lets the SZ entropy stage carry quantization codes in the compact
// huffman.SymbolStream representation (two bytes per code instead of
// eight); larger radii ride that stream's wide-symbol escape extension.
type Quantizer struct {
	eb     float64
	eb2    float64 // 2×eb, precomputed: bin width, hot in Quantize/Recover
	radius int
	radF   float64 // float64(radius), precomputed for the range check
}

// New returns a Quantizer with the given absolute error bound and radius.
// radius ≤ 0 selects DefaultRadius.
func New(eb float64, radius int) *Quantizer {
	if radius <= 0 {
		radius = DefaultRadius
	}
	// 2×eb is an exact binary scaling, so precomputing it (and using
	// b×(2·eb) in place of (b×2)×eb) yields bit-identical results to the
	// original per-call expressions: both round the exact product 2·b·eb
	// once. Streams stay byte-frozen.
	return &Quantizer{eb: eb, eb2: 2 * eb, radius: radius, radF: float64(radius)}
}

// ErrorBound returns the absolute error bound.
func (q *Quantizer) ErrorBound() float64 { return q.eb }

// Radius returns the quantizer radius (alphabet size is 2×Radius).
func (q *Quantizer) Radius() int { return q.radius }

// AlphabetSize returns the number of distinct codes including the escape.
func (q *Quantizer) AlphabetSize() int { return 2 * q.radius }

// ZeroCode returns the code of the zero-residual bin.
func (q *Quantizer) ZeroCode() int { return q.radius }

// Quantize maps (value, prediction) to a code and the value recovered from
// that code. ok is false when the residual cannot be represented within the
// error bound, in which case the caller must store the value as a literal
// and use the original value as the reconstruction.
func (q *Quantizer) Quantize(value, pred float64) (code int, recovered float64, ok bool) {
	diff := value - pred
	if math.IsNaN(diff) || math.IsInf(diff, 0) {
		return EscapeCode, value, false
	}
	// Round to nearest bin of width 2eb.
	d := diff / q.eb2
	if d >= q.radF || d <= -q.radF {
		return EscapeCode, value, false
	}
	bin := int(math.Round(d))
	if bin >= q.radius || bin <= -q.radius {
		return EscapeCode, value, false
	}
	rec := pred + float64(bin)*q.eb2
	// Floating-point rounding can push the recovered value past the bound;
	// escape in that (rare) case to preserve the guarantee.
	if math.Abs(rec-value) > q.eb {
		return EscapeCode, value, false
	}
	code = bin + q.radius
	if code == EscapeCode {
		return EscapeCode, value, false
	}
	return code, rec, true
}

// Recover reconstructs a value from a prediction and a non-escape code.
func (q *Quantizer) Recover(pred float64, code int) float64 {
	return pred + float64(code-q.radius)*q.eb2
}
