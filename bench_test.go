// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (see docs/ARCHITECTURE.md for the experiment index),
// plus ablation benches for the repo's own design choices.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Each paper-artifact bench executes the corresponding driver from
// internal/experiments; ns/op therefore measures the cost of regenerating
// that artifact at the default laptop scale.
package ocelot

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"ocelot/internal/datagen"
	"ocelot/internal/experiments"
	"ocelot/internal/features"
	"ocelot/internal/grouping"
	"ocelot/internal/huffman"
	"ocelot/internal/lossless"
	"ocelot/internal/sz"
)

// benchScale is used by the artifact benches: smaller than the default
// experiment scale so the full suite completes in minutes.
func benchScale() experiments.Scale { return experiments.Scale{Shrink: 24, Seed: 42} }

func runExperiment(b *testing.B, fn func(experiments.Scale) (*experiments.Result, error)) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := fn(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if res.Text == "" {
			b.Fatal("empty result")
		}
	}
}

// --- Paper tables ---

func BenchmarkTableI_DataFeatures(b *testing.B)           { runExperiment(b, experiments.TableI) }
func BenchmarkTableII_FilePatterns(b *testing.B)          { runExperiment(b, experiments.TableII) }
func BenchmarkTableV_CRTimePrediction(b *testing.B)       { runExperiment(b, experiments.TableV) }
func BenchmarkTableVI_PSNRPredictionCESM(b *testing.B)    { runExperiment(b, experiments.TableVI) }
func BenchmarkTableVII_PSNRPredictionISABEL(b *testing.B) { runExperiment(b, experiments.TableVII) }
func BenchmarkTableVIII_EndToEndTransfer(b *testing.B)    { runExperiment(b, experiments.TableVIII) }

// --- Paper figures ---

func BenchmarkFig4_EntropyVsTime(b *testing.B)        { runExperiment(b, experiments.Fig4) }
func BenchmarkFig5_FeaturesVsRatioNyx(b *testing.B)   { runExperiment(b, experiments.Fig5) }
func BenchmarkFig6_MirandaRrle(b *testing.B)          { runExperiment(b, experiments.Fig6) }
func BenchmarkFig7_PSNRFeaturesCESM(b *testing.B)     { runExperiment(b, experiments.Fig7) }
func BenchmarkFig8_PSNRFeaturesISABEL(b *testing.B)   { runExperiment(b, experiments.Fig8) }
func BenchmarkFig9_ParallelScaling(b *testing.B)      { runExperiment(b, experiments.Fig9) }
func BenchmarkFig12_PredictionErrorDist(b *testing.B) { runExperiment(b, experiments.Fig12) }
func BenchmarkFig13_OverheadAnalysis(b *testing.B)    { runExperiment(b, experiments.Fig13) }
func BenchmarkFig14_RTMTimeFeatures(b *testing.B)     { runExperiment(b, experiments.Fig14) }
func BenchmarkFig15_VisualQuality(b *testing.B)       { runExperiment(b, experiments.Fig15) }
func BenchmarkFig16_TransferComparison(b *testing.B)  { runExperiment(b, experiments.Fig16) }

// --- Ablations (DESIGN.md §5) ---

// benchField loads a medium CESM field once per process.
func benchField(b *testing.B) *datagen.Field {
	b.Helper()
	f, err := datagen.Generate("CESM", "TMQ", 10, 7)
	if err != nil {
		b.Fatal(err)
	}
	return f
}

// BenchmarkAblation_Predictor compares the three decorrelation pipelines.
func BenchmarkAblation_Predictor(b *testing.B) {
	f := benchField(b)
	for _, p := range []sz.Predictor{sz.PredictorLorenzo, sz.PredictorInterp, sz.PredictorRegression} {
		b.Run(p.String(), func(b *testing.B) {
			cfg := sz.DefaultConfig(1e-3)
			cfg.Predictor = p
			b.SetBytes(int64(f.NumPoints() * 8))
			b.ReportAllocs()
			var size int
			for i := 0; i < b.N; i++ {
				stream, _, err := sz.Compress(f.Data, f.Dims, cfg)
				if err != nil {
					b.Fatal(err)
				}
				size = len(stream)
			}
			b.ReportMetric(float64(f.RawBytes())/float64(size), "ratio")
		})
	}
}

// BenchmarkAblation_LosslessBackend compares the final lossless stage.
func BenchmarkAblation_LosslessBackend(b *testing.B) {
	f := benchField(b)
	for _, be := range []lossless.Backend{lossless.None, lossless.Deflate, lossless.LZSS} {
		b.Run(be.String(), func(b *testing.B) {
			cfg := sz.DefaultConfig(1e-3)
			cfg.Backend = be
			b.SetBytes(int64(f.NumPoints() * 8))
			b.ReportAllocs()
			var size int
			for i := 0; i < b.N; i++ {
				stream, _, err := sz.Compress(f.Data, f.Dims, cfg)
				if err != nil {
					b.Fatal(err)
				}
				size = len(stream)
			}
			b.ReportMetric(float64(f.RawBytes())/float64(size), "ratio")
		})
	}
}

// BenchmarkAblation_SamplingStride compares feature-extraction cost at the
// paper's sampling rates (Fig 13's knob).
func BenchmarkAblation_SamplingStride(b *testing.B) {
	f := benchField(b)
	cfg := sz.DefaultConfig(1e-3)
	for _, stride := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("stride-%d", stride), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := features.Extract(f.Data, f.Dims, cfg, features.Options{SampleStride: stride}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_GroupingStrategy compares packing strategies on a
// CESM-like inventory of small compressed files.
func BenchmarkAblation_GroupingStrategy(b *testing.B) {
	sizes := make([]int64, 7182)
	for i := range sizes {
		sizes[i] = 31e6 // ~224MB raw at ratio ~7
	}
	link := StandardLinks()["Anvil->Bebop"]
	cases := []struct {
		name     string
		strategy grouping.Strategy
		param    int64
	}{
		{"by-world-64", grouping.ByWorldSize, 64},
		{"by-target-2GB", grouping.ByTargetSize, 2 << 30},
		{"single-archive", grouping.SingleArchive, 0},
		{"no-grouping", 0, 0},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var seconds float64
			for i := 0; i < b.N; i++ {
				moved := sizes
				if c.strategy != 0 {
					plan, err := grouping.Plan(sizes, c.strategy, c.param)
					if err != nil {
						b.Fatal(err)
					}
					moved = grouping.GroupSizes(sizes, plan)
				}
				tr, err := link.Estimate(moved, int64(i))
				if err != nil {
					b.Fatal(err)
				}
				seconds = tr.Seconds
			}
			b.ReportMetric(seconds, "transfer-sec")
		})
	}
}

// BenchmarkCampaignPipelineOverlap runs the same campaign on the
// phase-barriered engine and on the streaming pipelined engine over the
// same simulated WAN, and reports both wall times plus the speedup. The
// pipelined wall time sits measurably below the sequential
// compress-then-transfer sum because packed groups ship while later
// fields are still compressing.
func BenchmarkCampaignPipelineOverlap(b *testing.B) {
	var fields []*datagen.Field
	for _, name := range datagen.Fields("CESM")[:12] {
		f, err := datagen.Generate("CESM", name, 16, 5)
		if err != nil {
			b.Fatal(err)
		}
		fields = append(fields, f)
	}
	spec := CampaignSpec{
		RelErrorBound:   1e-3,
		Workers:         4,
		GroupParam:      6,
		Transport:       &SimulatedWANTransport{Link: StandardLinks()["Anvil->Bebop"], Timescale: 1},
		TransferStreams: 2,
	}
	seqSpec := spec
	seqSpec.Engine = EngineSequential
	b.ReportAllocs()
	var seqWall, pipeWall, overlap float64
	for i := 0; i < b.N; i++ {
		seq, err := Run(context.Background(), fields, seqSpec)
		if err != nil {
			b.Fatal(err)
		}
		pipe, err := Run(context.Background(), fields, spec)
		if err != nil {
			b.Fatal(err)
		}
		seqWall += seq.WallSec
		pipeWall += pipe.WallSec
		overlap += pipe.OverlapSec
	}
	n := float64(b.N)
	b.ReportMetric(seqWall/n, "sequential-sec")
	b.ReportMetric(pipeWall/n, "pipelined-sec")
	b.ReportMetric(overlap/n, "overlap-sec")
	if pipeWall > 0 {
		b.ReportMetric(seqWall/pipeWall, "speedup")
	}
}

// BenchmarkPipelineArtifact regenerates the Pipeline experiment artifact
// (sequential vs streaming campaign table).
func BenchmarkPipelineArtifact(b *testing.B) { runExperiment(b, experiments.PipelineOverlap) }

// BenchmarkCampaignParallelCompression runs the chunk-parallel fan-out
// campaign at 1 and 8 endpoint workers over the same simulated WAN and
// reports the wall times, the 8-vs-1 speedup, and the parallelism-aware
// planner's compress-wall prediction error. The decompressed output must be
// bit-identical across worker counts — the benchmark fails otherwise.
func BenchmarkCampaignParallelCompression(b *testing.B) {
	b.ReportAllocs()
	var w1, w8, speedup, predErr float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.ParallelCompression(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if res.Values["digest_match"] != 1 {
			b.Fatal("decompressed output differs across worker counts")
		}
		w1 += res.Values["wall_w1"]
		w8 += res.Values["wall_w8"]
		speedup += res.Values["speedup_8v1"]
		predErr += res.Values["pred_compress_relerr"]
	}
	n := float64(b.N)
	b.ReportMetric(w1/n, "wall-1w-sec")
	b.ReportMetric(w8/n, "wall-8w-sec")
	b.ReportMetric(speedup/n, "speedup-8v1")
	b.ReportMetric(predErr/n, "pred-compress-relerr")
}

// BenchmarkCampaignCodecShootout regenerates the CodecShootout artifact
// (sz3 vs szx campaigns on fast and slow simulated links) and reports the
// szx compression speedup plus the planner's per-link codec choices. It
// fails if szx loses its ≥3x compression-speed edge (a same-machine
// relative measure, robust to host speed). The planner's per-link codec
// shares are reported as metrics only: the slow-link crossover depends on
// absolute measured compression speed, which a loaded or instrumented
// host legitimately moves (the deterministic synthetic-model planner
// tests assert the separation property instead).
func BenchmarkCampaignCodecShootout(b *testing.B) {
	b.ReportAllocs()
	var speedup, shareFast, shareSlow float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.CodecShootout(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if res.Values["speedup_szx"] < 3 {
			b.Fatalf("szx only %.1fx faster than sz3 (need >= 3x)", res.Values["speedup_szx"])
		}
		speedup += res.Values["speedup_szx"]
		shareFast += res.Values["szx_share_fast"]
		shareSlow += res.Values["szx_share_slow"]
	}
	n := float64(b.N)
	b.ReportMetric(speedup/n, "szx-speedup")
	b.ReportMetric(shareFast/n, "szx-share-fast")
	b.ReportMetric(shareSlow/n, "szx-share-slow")
}

// BenchmarkCompressThroughput measures raw compressor speed on each
// application's representative field.
func BenchmarkCompressThroughput(b *testing.B) {
	cases := []struct{ app, field string }{
		{"CESM", "TMQ"},
		{"Miranda", "density"},
		{"Nyx", "baryon_density"},
		{"ISABEL", "Pf48"},
		{"RTM", "snap-1048"},
	}
	for _, c := range cases {
		b.Run(c.app, func(b *testing.B) {
			f, err := datagen.Generate(c.app, c.field, 12, 7)
			if err != nil {
				b.Fatal(err)
			}
			cfg := sz.DefaultConfig(1e-3)
			b.SetBytes(int64(f.NumPoints() * 8))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := sz.Compress(f.Data, f.Dims, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Entropy hot path (BENCH_hotpath.json tracks these as file diffs) ---

// huffmanBenchStream builds an SZ-realistic quantization-code stream: a
// zero-bin-dominated normal spread over the default 64K alphabet.
func huffmanBenchStream(b *testing.B) (*huffman.SymbolStream, []uint64) {
	b.Helper()
	rng := rand.New(rand.NewSource(3))
	var s huffman.SymbolStream
	freqs := make([]uint64, 1<<16)
	for i := 0; i < 1<<18; i++ {
		sym := 1<<15 + int(rng.NormFloat64()*40)
		s.Append(sym)
		freqs[sym]++
	}
	return &s, freqs
}

// BenchmarkHuffmanEncode measures the production encode path (EncodeToSized
// into a reused buffer, payload bits precomputed from the frequency table).
func BenchmarkHuffmanEncode(b *testing.B) {
	s, freqs := huffmanBenchStream(b)
	table, err := huffman.BuildTable(freqs)
	if err != nil {
		b.Fatal(err)
	}
	bits, err := table.EncodedBitsStream(s)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(s.Len()) * 2) // compact representation: 2 bytes/symbol
	b.ReportAllocs()
	b.ResetTimer()
	var buf []byte
	for i := 0; i < b.N; i++ {
		out, err := huffman.EncodeToSized(buf[:0], s, table, bits)
		if err != nil {
			b.Fatal(err)
		}
		buf = out
	}
}

// BenchmarkHuffmanDecode measures the two-level table-driven decode
// (DecodeInto with a reused SymbolStream) against the same stream.
func BenchmarkHuffmanDecode(b *testing.B) {
	s, freqs := huffmanBenchStream(b)
	table, err := huffman.BuildTable(freqs)
	if err != nil {
		b.Fatal(err)
	}
	bits, err := table.EncodedBitsStream(s)
	if err != nil {
		b.Fatal(err)
	}
	enc, err := huffman.EncodeToSized(nil, s, table, bits)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(s.Len()) * 2)
	b.ReportAllocs()
	b.ResetTimer()
	var dec huffman.SymbolStream
	for i := 0; i < b.N; i++ {
		if err := huffman.DecodeInto(&dec, enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSZ3Throughput measures single-stream sz3 compress/decompress
// MB/s on the overhauled hot path and on the pinned pre-overhaul
// reference, on the same field — the four figures BENCH_hotpath.json
// freezes per PR (acceptance: decompress ≥2x, compress ≥1.3x reference).
func BenchmarkSZ3Throughput(b *testing.B) {
	f := benchField(b)
	cfg := sz.DefaultConfig(1e-3)
	stream, _, err := sz.Compress(f.Data, f.Dims, cfg)
	if err != nil {
		b.Fatal(err)
	}
	raw := int64(f.NumPoints() * 8)
	b.Run("compress", func(b *testing.B) {
		b.SetBytes(raw)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := sz.Compress(f.Data, f.Dims, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decompress", func(b *testing.B) {
		b.SetBytes(raw)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := sz.Decompress(stream); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compress-reference", func(b *testing.B) {
		b.SetBytes(raw)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := sz.CompressReference(f.Data, f.Dims, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decompress-reference", func(b *testing.B) {
		b.SetBytes(raw)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := sz.DecompressReference(stream); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkHotPathArtifact regenerates the HotPath artifact (the source of
// BENCH_hotpath.json) once per iteration.
func BenchmarkHotPathArtifact(b *testing.B) { runExperiment(b, experiments.HotPath) }
