package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ocelot/internal/core"
	"ocelot/internal/serve"
	"ocelot/internal/wan"
)

// cmdServe runs the multi-tenant campaign daemon:
//
//	ocelot serve -addr :9177 -route Anvil->Bebop -timescale 1e-3 \
//	  -tenants climate:2,physics:1 -max-running 8 -queue-depth 64
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:9177", "listen address")
	route := fs.String("route", "Anvil->Bebop", "shared WAN link campaigns transfer over; empty = in-process")
	timescale := fs.Float64("timescale", 1e-3, "wall seconds slept per simulated link second")
	tenants := fs.String("tenants", "", "named tenants as name:weight pairs, e.g. climate:2,physics:1 (others get weight 1)")
	maxPerTenant := fs.Int("max-per-tenant", 0, "max concurrently running campaigns per named tenant (0 = unlimited)")
	maxRunning := fs.Int("max-running", 8, "max concurrently running campaigns overall")
	queueDepth := fs.Int("queue-depth", 64, "max queued campaigns before submissions get 429")
	journalDir := fs.String("journal-dir", "", "journal every campaign under this directory and resume unfinished ones on startup")
	debugAddr := fs.String("debug-addr", "", "loopback address serving net/http/pprof and expvar (e.g. 127.0.0.1:6060; empty = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := serve.Config{
		MaxRunning: *maxRunning,
		QueueDepth: *queueDepth,
		JournalDir: *journalDir,
	}
	if *route != "" {
		link, ok := wan.StandardLinks()[*route]
		if !ok {
			return fmt.Errorf("serve: unknown route %q (have: Anvil->Cori, Anvil->Bebop, Bebop->Cori, Cori->Bebop)", *route)
		}
		cfg.Transport = &core.SimulatedWANTransport{Link: link, Timescale: *timescale}
	}
	if *tenants != "" {
		cfg.Tenants = map[string]serve.TenantConfig{}
		for _, pair := range strings.Split(*tenants, ",") {
			name, weightStr, found := strings.Cut(strings.TrimSpace(pair), ":")
			if name == "" {
				return fmt.Errorf("serve: bad -tenants entry %q", pair)
			}
			weight := 1.0
			if found {
				w, err := strconv.ParseFloat(weightStr, 64)
				if err != nil || w <= 0 {
					return fmt.Errorf("serve: bad weight in -tenants entry %q", pair)
				}
				weight = w
			}
			cfg.Tenants[name] = serve.TenantConfig{Weight: weight, MaxCampaigns: *maxPerTenant}
		}
	}

	srv := serve.NewServer(cfg)
	defer srv.Close()
	if *journalDir != "" {
		resumed, errs := srv.Recover()
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "ocelot serve: recover:", e)
		}
		if len(resumed) > 0 {
			fmt.Printf("ocelot serve: resumed %d unfinished campaign(s) from %s\n", len(resumed), *journalDir)
		}
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		httpSrv.Close()
	}()
	if *debugAddr != "" {
		// Profiling endpoints live on their own listener — typically
		// loopback — so operators can expose the campaign API without also
		// exposing heap dumps and CPU profiles.
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("serve: debug listener: %w", err)
		}
		dbgSrv := &http.Server{Handler: debugMux()}
		go func() { _ = dbgSrv.Serve(dln) }()
		go func() {
			<-ctx.Done()
			dbgSrv.Close()
		}()
		fmt.Printf("ocelot serve: debug endpoints (/debug/pprof, /debug/vars) on %s\n", dln.Addr())
	}
	fmt.Printf("ocelot serve: listening on %s (route %s, %d tenants configured)\n",
		ln.Addr(), orDash(*route), len(cfg.Tenants))
	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Println("ocelot serve: shutting down, cancelling campaigns")
	return nil
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// debugMux assembles the profiling mux: the standard net/http/pprof
// handlers plus expvar, mounted explicitly instead of relying on their
// DefaultServeMux side-effect registrations.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// cmdSubmit submits a campaign to a running daemon:
//
//	ocelot submit -server http://127.0.0.1:9177 -tenant climate -fields 4 -eb 1e-3 -watch
func cmdSubmit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ContinueOnError)
	server := fs.String("server", "http://127.0.0.1:9177", "daemon base URL")
	tenant := fs.String("tenant", "default", "submitting tenant")
	priority := fs.Int("priority", 0, "priority within the tenant's queue (higher first)")
	app := fs.String("app", "CESM", "application whose fields to campaign")
	nFields := fs.Int("fields", 4, "number of fields")
	shrink := fs.Int("shrink", 24, "divide paper dimensions by this factor")
	seed := fs.Int64("seed", 3, "generator seed")
	eb := fs.Float64("eb", 1e-3, "relative error bound")
	codecName := fs.String("codec", "", "compressor (empty = sz3)")
	workers := fs.Int("workers", 4, "compression/decompression workers")
	groups := fs.Int64("groups", 4, "group count (by-world-size packing)")
	engine := fs.String("engine", "pipelined", "pipelined | barrier | sequential")
	streams := fs.Int("streams", 0, "archives in flight at once (0 = link concurrency)")
	chunkMB := fs.Float64("chunk-mb", 0, "chunk-parallel compression granularity in raw MB (0 = monolithic)")
	watch := fs.Bool("watch", false, "stream status until the campaign finishes")
	if err := fs.Parse(args); err != nil {
		return err
	}

	req := serve.SubmitRequest{
		Tenant:   *tenant,
		Priority: *priority,
		App:      *app,
		Fields:   *nFields,
		Shrink:   *shrink,
		Seed:     *seed,
		Spec: serve.SpecRequest{
			RelErrorBound: *eb,
			Codec:         *codecName,
			Workers:       *workers,
			Groups:        *groups,
			Engine:        *engine,
			Streams:       *streams,
			ChunkMB:       *chunkMB,
		},
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := http.Post(*server+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	st, err := decodeJobStatus(resp)
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	fmt.Printf("submitted %s (tenant %s, state %s)\n", st.ID, st.Tenant, st.State)
	if *watch {
		return watchJob(*server, st.ID)
	}
	return nil
}

// cmdWatch streams a campaign's live status:
//
//	ocelot watch -server http://127.0.0.1:9177 -id c-1
func cmdWatch(args []string) error {
	fs := flag.NewFlagSet("watch", flag.ContinueOnError)
	server := fs.String("server", "http://127.0.0.1:9177", "daemon base URL")
	id := fs.String("id", "", "campaign ID (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return errors.New("watch: -id is required")
	}
	return watchJob(*server, *id)
}

// cmdCancel requests cancellation of a running or queued campaign:
//
//	ocelot cancel -server http://127.0.0.1:9177 -id c-1
func cmdCancel(args []string) error {
	fs := flag.NewFlagSet("cancel", flag.ContinueOnError)
	server := fs.String("server", "http://127.0.0.1:9177", "daemon base URL")
	id := fs.String("id", "", "campaign ID (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return errors.New("cancel: -id is required")
	}
	resp, err := http.Post(*server+"/v1/campaigns/"+*id+"/cancel", "application/json", nil)
	if err != nil {
		return err
	}
	st, err := decodeJobStatus(resp)
	if err != nil {
		return fmt.Errorf("cancel: %w", err)
	}
	fmt.Printf("cancel requested for %s (state %s)\n", st.ID, st.State)
	return nil
}

// cmdCampaigns lists every campaign the daemon knows about:
//
//	ocelot campaigns -server http://127.0.0.1:9177
func cmdCampaigns(args []string) error {
	fs := flag.NewFlagSet("campaigns", flag.ContinueOnError)
	server := fs.String("server", "http://127.0.0.1:9177", "daemon base URL")
	if err := fs.Parse(args); err != nil {
		return err
	}
	resp, err := http.Get(*server + "/v1/campaigns")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeHTTPError(resp)
	}
	var list []serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		return err
	}
	fmt.Printf("%-8s %-12s %4s %-10s %10s %12s %12s\n",
		"id", "tenant", "pri", "state", "queued(s)", "sent (MB)", "elapsed(s)")
	for _, st := range list {
		var sentMB, elapsed float64
		if st.Campaign != nil {
			sentMB = float64(st.Campaign.SentBytes) / 1e6
			elapsed = st.Campaign.ElapsedSec
		}
		fmt.Printf("%-8s %-12s %4d %-10s %10.2f %12.2f %12.2f\n",
			st.ID, st.Tenant, st.Priority, st.State, st.QueuedSec, sentMB, elapsed)
	}
	return nil
}

// Reconnect budget for watchJob; vars so tests can tighten the clock.
var (
	watchMaxRetries  = 5
	watchBaseBackoff = 200 * time.Millisecond
	watchMaxBackoff  = 5 * time.Second
)

// watchJob streams the daemon's NDJSON watch endpoint, printing one status
// line per snapshot until the campaign is terminal. Transient stream drops
// (a daemon restart, a flaky network) reconnect with exponential backoff
// from the last seen state; every successfully decoded snapshot refunds
// the retry budget, so only a stream that stays dead exhausts it.
func watchJob(server, id string) error {
	var last serve.JobStatus
	retries := 0
	backoff := watchBaseBackoff
	for {
		n, err := streamJob(server, id, &last)
		if err != nil {
			return err // definitive: HTTP error status or undecodable stream
		}
		if last.Terminal {
			if last.State != "done" {
				return fmt.Errorf("campaign %s finished %s: %s", id, last.State, last.Error)
			}
			return nil
		}
		if n > 0 {
			retries, backoff = 0, watchBaseBackoff
		}
		retries++
		if retries > watchMaxRetries {
			return fmt.Errorf("watch: lost %s after %d reconnect attempts (last state %q)", id, watchMaxRetries, last.State)
		}
		fmt.Fprintf(os.Stderr, "watch: stream dropped (state %q), reconnecting in %v (%d/%d)\n",
			last.State, backoff, retries, watchMaxRetries)
		time.Sleep(backoff)
		if backoff *= 2; backoff > watchMaxBackoff {
			backoff = watchMaxBackoff
		}
	}
}

// streamJob consumes one watch connection, updating *last and printing a
// line per snapshot, and returns how many snapshots it decoded. A nil
// error with !last.Terminal means the connection dropped mid-stream —
// retryable. Non-2xx responses and malformed payloads are definitive.
func streamJob(server, id string, last *serve.JobStatus) (int, error) {
	resp, err := http.Get(server + "/v1/campaigns/" + id + "/watch")
	if err != nil {
		return 0, nil // connection refused: daemon restarting — retryable
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, decodeHTTPError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	n := 0
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), last); err != nil {
			return n, fmt.Errorf("watch: bad status line: %w", err)
		}
		n++
		printJobStatus(*last)
		if last.Terminal {
			return n, nil
		}
	}
	// Scanner errors are mid-stream drops too: reconnect, don't die.
	return n, nil
}

func printJobStatus(st serve.JobStatus) {
	line := fmt.Sprintf("%s  %-9s", st.ID, st.State)
	if c := st.Campaign; c != nil {
		line += fmt.Sprintf("  %6.2fs  %2d/%d groups  %8.2f MB sent", c.ElapsedSec, c.SentGroups, c.Fields, float64(c.SentBytes)/1e6)
		if c.Retries > 0 || c.Failovers > 0 {
			line += fmt.Sprintf("  %d retries/%d failovers", c.Retries, c.Failovers)
		}
		if c.CorruptGroups > 0 {
			line += fmt.Sprintf("  %d corrupt/%d resent", c.CorruptGroups, c.Retransmits)
		}
		if c.DegradedFields > 0 {
			line += fmt.Sprintf("  %d quarantined", c.DegradedFields)
		}
		for _, s := range c.Stages {
			if s.Name == "transfer" && s.MBps > 0 {
				line += fmt.Sprintf("  (%.1f MB/s)", s.MBps)
			}
		}
	}
	fmt.Println(line)
}

// decodeJobStatus parses a JobStatus response, converting error bodies on
// non-2xx statuses into Go errors.
func decodeJobStatus(resp *http.Response) (serve.JobStatus, error) {
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return serve.JobStatus{}, decodeHTTPError(resp)
	}
	var st serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return serve.JobStatus{}, err
	}
	return st, nil
}

// decodeHTTPError turns a JSON error body into an error value.
func decodeHTTPError(resp *http.Response) error {
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err == nil && body.Error != "" {
		return fmt.Errorf("server returned %d: %s", resp.StatusCode, body.Error)
	}
	return fmt.Errorf("server returned %d", resp.StatusCode)
}
