// Command ocelot is the CLI front-end to the Ocelot pipeline:
//
//	ocelot generate  -app CESM -field TMQ -shrink 8 -out tmq.dat
//	ocelot compress  -in tmq.dat -out tmq.sz -eb 1e-3 [-predictor interp] [-codec szx]
//	ocelot decompress -in tmq.sz -out tmq.recon.dat   (codec detected by magic)
//	ocelot predict   -in tmq.dat -eb 1e-3          (train-on-the-fly estimate)
//	ocelot simulate  -app CESM -files 7182 -bytes 224000000 -ratio 7.2 \
//	                 -route Anvil-\>Bebop
//	ocelot campaign  -app CESM -fields 12 -pipeline -route Anvil-\>Bebop
//	ocelot campaign  -pipeline -codec szx -route Anvil-\>Bebop
//	ocelot plan      -app CESM -fields 12 -route Anvil-\>Bebop -min-psnr 70 -codec sz3,szx
//	ocelot campaign  -adaptive -min-psnr 70 -route Anvil-\>Bebop -codec sz3,szx
//	ocelot campaign  -pipeline -chunk-mb 0.05 -compress-workers 8 -route Anvil-\>Bebop
//	ocelot campaign  -pipeline -journal run.ocjl -kill-after-groups 2
//	ocelot campaign  -pipeline -journal run.ocjl -resume run.ocjl
//	ocelot serve     -addr :9177 -route Anvil-\>Bebop -tenants climate:2,physics:1
//	ocelot serve     -addr :9177 -journal-dir /var/lib/ocelot/journals
//	ocelot submit    -server http://127.0.0.1:9177 -tenant climate -fields 4 -watch
//	ocelot watch     -server http://127.0.0.1:9177 -id c-1
//	ocelot cancel    -server http://127.0.0.1:9177 -id c-1
//	ocelot campaigns -server http://127.0.0.1:9177
//
// All data files use the raw-binary + JSON-sidecar layout of
// internal/dataio.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	rpprof "runtime/pprof"
	"strings"
	"time"

	"ocelot/internal/cluster"
	"ocelot/internal/codec"
	"ocelot/internal/core"
	"ocelot/internal/datagen"
	"ocelot/internal/dataio"
	"ocelot/internal/dtree"
	"ocelot/internal/metrics"
	"ocelot/internal/obs"
	"ocelot/internal/planner"
	"ocelot/internal/quality"
	"ocelot/internal/sentinel"
	"ocelot/internal/sz"
	"ocelot/internal/wan"
)

// writeTraceFile creates path and streams a trace export into it,
// propagating both the exporter's and Close's error.
func writeTraceFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ocelot:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return errors.New("usage: ocelot <generate|compress|decompress|predict|plan|simulate|campaign|serve|submit|watch|cancel|campaigns> [flags]")
	}
	switch args[0] {
	case "plan":
		return cmdPlan(args[1:])
	case "serve":
		return cmdServe(args[1:])
	case "submit":
		return cmdSubmit(args[1:])
	case "watch":
		return cmdWatch(args[1:])
	case "cancel":
		return cmdCancel(args[1:])
	case "campaigns":
		return cmdCampaigns(args[1:])
	case "generate":
		return cmdGenerate(args[1:])
	case "compress":
		return cmdCompress(args[1:])
	case "decompress":
		return cmdDecompress(args[1:])
	case "predict":
		return cmdPredict(args[1:])
	case "simulate":
		return cmdSimulate(args[1:])
	case "campaign":
		return cmdCampaign(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ContinueOnError)
	app := fs.String("app", "CESM", "application (CESM, Miranda, RTM, Nyx, ISABEL, QMCPACK, HACC)")
	field := fs.String("field", "TMQ", "field name (RTM: snap-NNNN)")
	shrink := fs.Int("shrink", 8, "divide paper dimensions by this factor")
	seed := fs.Int64("seed", 1, "generator seed")
	out := fs.String("out", "", "output path (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return errors.New("generate: -out is required")
	}
	f, err := datagen.Generate(*app, *field, *shrink, *seed)
	if err != nil {
		return err
	}
	if err := dataio.Save(f, *out); err != nil {
		return err
	}
	st := metrics.ComputeRange(f.Data)
	fmt.Printf("wrote %s: %s dims=%v points=%d range=[%.4g, %.4g]\n",
		*out, f.ID(), f.Dims, f.NumPoints(), st.Min, st.Max)
	return nil
}

func cmdCompress(args []string) error {
	fs := flag.NewFlagSet("compress", flag.ContinueOnError)
	in := fs.String("in", "", "input data file (required)")
	out := fs.String("out", "", "output stream path (required)")
	eb := fs.Float64("eb", 1e-3, "error bound")
	rel := fs.Bool("rel", true, "interpret -eb relative to the value range")
	predictor := fs.String("predictor", "interp", "lorenzo | interp | regression (sz3 only)")
	codecName := fs.String("codec", "sz3", "compressor: "+strings.Join(codec.Names(), " | "))
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return errors.New("compress: -in and -out are required")
	}
	f, err := dataio.Load(*in)
	if err != nil {
		return err
	}
	cdc, err := codec.Lookup(*codecName)
	if err != nil {
		return err
	}
	cfg := sz.DefaultConfig(*eb)
	if *rel {
		cfg.BoundMode = sz.BoundRelative
	}
	// Validate -predictor regardless of codec: a typo should fail loudly
	// even when the chosen codec has no predictor stage and ignores it.
	pred, err := sz.ParsePredictor(*predictor)
	if err != nil {
		return err
	}
	start := time.Now()
	var stream []byte
	extra := ""
	if cdc.Name() == sz.CodecName {
		cfg.Predictor = pred
		var stats *sz.Stats
		if stream, stats, err = sz.Compress(f.Data, f.Dims, cfg); err != nil {
			return err
		}
		extra = fmt.Sprintf(", p0=%.3f escapes=%d", stats.P0Quant, stats.NumEscapes)
	} else {
		if stream, err = cdc.Compress(f.Data, f.Dims, codec.Params{AbsErrorBound: cfg.AbsoluteBound(f.Data)}); err != nil {
			return err
		}
	}
	if err := dataio.SaveStream(stream, *out); err != nil {
		return err
	}
	fmt.Printf("compressed %s -> %s [%s]: %d -> %d bytes (ratio %.2f) in %.3fs%s\n",
		*in, *out, cdc.Name(), f.RawBytes(), len(stream),
		float64(f.RawBytes())/float64(len(stream)),
		time.Since(start).Seconds(), extra)
	return nil
}

func cmdDecompress(args []string) error {
	fs := flag.NewFlagSet("decompress", flag.ContinueOnError)
	in := fs.String("in", "", "input stream (required)")
	out := fs.String("out", "", "output data path (required)")
	verify := fs.String("verify", "", "optional original file to verify against")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return errors.New("decompress: -in and -out are required")
	}
	stream, err := dataio.LoadStream(*in)
	if err != nil {
		return err
	}
	codecName := "?"
	if name, err := codec.FormatName(stream); err == nil {
		codecName = name
	}
	start := time.Now()
	// Registry dispatch: any registered codec's stream (and chunked
	// containers) decode through the magic.
	data, dims, err := codec.Decompress(stream)
	if err != nil {
		return err
	}
	f := &datagen.Field{App: "recon", Name: *in, Dims: dims, Data: data, ElementSize: 4}
	if err := dataio.Save(f, *out); err != nil {
		return err
	}
	fmt.Printf("decompressed %s -> %s [%s]: %d points in %.3fs\n",
		*in, *out, codecName, len(data), time.Since(start).Seconds())
	if *verify != "" {
		orig, err := dataio.Load(*verify)
		if err != nil {
			return err
		}
		maxErr, err := metrics.MaxAbsError(orig.Data, data)
		if err != nil {
			return err
		}
		psnr, err := metrics.PSNR(orig.Data, data)
		if err != nil {
			return err
		}
		fmt.Printf("verification: max|err|=%.6g PSNR=%.2f dB\n", maxErr, psnr)
	}
	return nil
}

func cmdPredict(args []string) error {
	fs := flag.NewFlagSet("predict", flag.ContinueOnError)
	in := fs.String("in", "", "input data file (required)")
	eb := fs.Float64("eb", 1e-3, "relative error bound to estimate")
	shrink := fs.Int("train-shrink", 32, "training corpus shrink factor")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return errors.New("predict: -in is required")
	}
	f, err := dataio.Load(*in)
	if err != nil {
		return err
	}
	// Train a model on a small cross-application corpus on the fly.
	var corpus []*datagen.Field
	for _, spec := range []struct {
		app    string
		fields []string
	}{
		{"CESM", []string{"TMQ", "CLDHGH", "FLDSC", "LHFLX", "PSL"}},
		{"Miranda", []string{"density", "velocityx", "pressure"}},
		{"ISABEL", []string{"Pf48", "Wf48", "QVAPORf48"}},
	} {
		for _, name := range spec.fields {
			cf, err := datagen.Generate(spec.app, name, *shrink, 7)
			if err != nil {
				return err
			}
			corpus = append(corpus, cf)
		}
	}
	samples, err := quality.Collect(corpus, quality.CollectOptions{WithPSNR: true})
	if err != nil {
		return err
	}
	model, err := quality.Train(samples, dtree.Params{MaxDepth: 14})
	if err != nil {
		return err
	}
	est, err := model.EstimateField(f.Data, f.Dims, *eb, 0)
	if err != nil {
		return err
	}
	fmt.Printf("prediction for %s at rel-eb %.0e:\n", *in, *eb)
	fmt.Printf("  compression ratio: %.2f\n", est.Ratio)
	fmt.Printf("  compression time:  %.3fs (this machine)\n", est.Seconds)
	fmt.Printf("  PSNR:              %.1f dB\n", est.PSNR)
	return nil
}

func cmdSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	app := fs.String("app", "CESM", "dataset label")
	files := fs.Int("files", 7182, "file count")
	bytesPer := fs.Int64("bytes", 224e6, "bytes per file")
	ratio := fs.Float64("ratio", 7.2, "expected compression ratio")
	route := fs.String("route", "Anvil->Bebop", "one of the standard links")
	nodes := fs.Int("nodes", 16, "source compression nodes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	links := wan.StandardLinks()
	link, ok := links[*route]
	if !ok {
		return fmt.Errorf("simulate: unknown route %q (have: Anvil->Cori, Anvil->Bebop, Bebop->Cori, Cori->Bebop)", *route)
	}
	machines := cluster.Standard()
	src, dst := routeMachines(*route, machines)
	p := &core.Pipeline{Source: src, Dest: dst, Link: link}
	fileSet := core.UniformFileSet(*app, *files, *bytesPer, *ratio)
	direct, cp, op, err := p.CompareModes(fileSet, core.Plan{SourceNodes: *nodes, Seed: 1, GroupParam: 64})
	if err != nil {
		return err
	}
	fmt.Printf("simulation: %s, %d files × %d MB over %s\n", *app, *files, *bytesPer/1e6, *route)
	fmt.Printf("  NP (direct):      %8.1fs  (%.0f MB/s)\n", direct.TotalSec, direct.EffectiveMBps)
	fmt.Printf("  CP (compressed):  %8.1fs  [cp %.1fs + xfer %.1fs + dp %.1fs]\n",
		cp.TotalSec, cp.CompressSec, cp.TransferSec, cp.DecompressSec)
	fmt.Printf("  OP (grouped):     %8.1fs  [cp %.1fs + xfer %.1fs + dp %.1fs]\n",
		op.TotalSec, op.CompressSec, op.TransferSec, op.DecompressSec)
	best := op
	if cp.TotalSec < op.TotalSec {
		best = cp
	}
	fmt.Printf("  gain: %.0f%% (paper range 41–91%%)\n", 100*core.Gain(direct, best))
	return nil
}

// campaignFields generates the synthetic fields a campaign or plan runs
// over.
func campaignFields(app string, nFields, shrink int, seed int64) ([]*datagen.Field, error) {
	available := datagen.Fields(app)
	if len(available) == 0 {
		return nil, fmt.Errorf("unknown app %q", app)
	}
	if nFields > len(available) {
		nFields = len(available)
	}
	fields := make([]*datagen.Field, 0, nFields)
	for _, name := range available[:nFields] {
		f, err := datagen.Generate(app, name, shrink, seed)
		if err != nil {
			return nil, err
		}
		fields = append(fields, f)
	}
	return fields, nil
}

// trainPlannerModel trains the quality model from a quick sweep over
// shrunken stand-ins of the campaign fields (the planner's
// train-on-the-fly path), covering every codec in the candidate grid
// (nil = the default sz3 grid).
func trainPlannerModel(app string, nFields, trainShrink int, seed int64, cands []planner.Candidate) (*quality.Model, error) {
	train, err := campaignFields(app, nFields, trainShrink, seed+1)
	if err != nil {
		return nil, err
	}
	return planner.TrainFromSweep(train, cands, dtree.Params{MaxDepth: 14})
}

// codecCandidates resolves a comma-separated -codec value into the
// planner's candidate grid; a single "sz3" keeps the historical default
// grid (nil).
func codecCandidates(list string) ([]planner.Candidate, error) {
	names := strings.Split(list, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	if len(names) == 1 && (names[0] == "" || names[0] == sz.CodecName) {
		return nil, nil
	}
	return planner.CodecCandidates(names)
}

// cmdPlan runs only the predictive plan stage: sample each field, predict
// quality across the candidate grid, and print the per-field decision
// table with the plan's end-to-end forecast.
func cmdPlan(args []string) error {
	fs := flag.NewFlagSet("plan", flag.ContinueOnError)
	app := fs.String("app", "CESM", "application whose fields to plan")
	nFields := fs.Int("fields", 12, "number of fields")
	shrink := fs.Int("shrink", 20, "divide paper dimensions by this factor")
	seed := fs.Int64("seed", 3, "generator seed")
	workers := fs.Int("workers", 8, "compression workers assumed by the plan")
	route := fs.String("route", "Anvil->Bebop", "WAN link the plan optimizes for")
	minPSNR := fs.Float64("min-psnr", 70, "quality floor in dB (0 disables)")
	maxRelEB := fs.Float64("max-releb", 0, "cap on the assigned relative error bound (0 disables)")
	trainShrink := fs.Int("train-shrink", 40, "shrink factor for the training sweep")
	chunkMB := fs.Float64("chunk-mb", 0, "plan for chunk-parallel compression with this raw MB per chunk (0 = monolithic fields)")
	compressWorkers := fs.Int("compress-workers", 0, "fan-out endpoint workers the plan assumes (0 = -workers)")
	codecList := fs.String("codec", "sz3", "comma-separated codec candidates for the grid (e.g. sz3,szx); valid: "+strings.Join(codec.Names(), ", "))
	if err := fs.Parse(args); err != nil {
		return err
	}
	link, ok := wan.StandardLinks()[*route]
	if !ok {
		return fmt.Errorf("plan: unknown route %q (have: Anvil->Cori, Anvil->Bebop, Bebop->Cori, Cori->Bebop)", *route)
	}
	cands, err := codecCandidates(*codecList)
	if err != nil {
		return fmt.Errorf("plan: %w", err)
	}
	fields, err := campaignFields(*app, *nFields, *shrink, *seed)
	if err != nil {
		return fmt.Errorf("plan: %w", err)
	}
	fmt.Printf("training quality model (sweep at shrink %d, codecs %s)...\n", *trainShrink, *codecList)
	start := time.Now()
	model, err := trainPlannerModel(*app, *nFields, *trainShrink, *seed, cands)
	if err != nil {
		return err
	}
	trainSec := time.Since(start).Seconds()
	planWorkers := *workers
	if *chunkMB > 0 && *compressWorkers > 0 {
		planWorkers = *compressWorkers
	}
	popts := planner.Options{
		Candidates: cands,
		MinPSNR:    *minPSNR,
		MaxRelEB:   *maxRelEB,
		Link:       link,
		Workers:    planWorkers,
		Seed:       *seed,
		ChunkBytes: int64(*chunkMB * 1e6),
	}
	start = time.Now()
	plan, err := planner.Build(fields, model, popts)
	if err != nil {
		return err
	}
	fmt.Printf("plan for %d %s fields over %s (trained %.1fs, planned %.3fs):\n\n",
		len(fields), *app, *route, trainSec, time.Since(start).Seconds())
	fmt.Print(plan.String())
	if fixed, err := planner.FixedBaseline(fields, model, popts); err == nil {
		fmt.Printf("fixed global-bound baseline under the same floor: rel-eb %.0e\n", fixed)
	}
	return nil
}

// cmdCampaign runs a real in-process compress-group-transfer-decompress
// campaign over synthetic fields, either phase-by-phase (default), on the
// streaming pipelined engine (-pipeline), or with the predictive planner
// choosing per-field bounds and grouping (-adaptive), optionally paced by
// one of the calibrated WAN links (-route).
func cmdCampaign(args []string) error {
	fs := flag.NewFlagSet("campaign", flag.ContinueOnError)
	app := fs.String("app", "CESM", "application whose fields to campaign")
	nFields := fs.Int("fields", 12, "number of fields")
	shrink := fs.Int("shrink", 20, "divide paper dimensions by this factor")
	seed := fs.Int64("seed", 3, "generator seed")
	eb := fs.Float64("eb", 1e-3, "relative error bound (fixed campaigns)")
	workers := fs.Int("workers", 8, "compression/decompression workers")
	groups := fs.Int64("groups", 4, "group count (by-world-size packing; -adaptive decides its own)")
	pipelined := fs.Bool("pipeline", false, "stream groups into the transfer while compressing")
	adaptive := fs.Bool("adaptive", false, "plan per-field bounds/predictors/grouping with the quality predictor")
	minPSNR := fs.Float64("min-psnr", 70, "adaptive quality floor in dB (0 disables)")
	trainShrink := fs.Int("train-shrink", 40, "adaptive training-sweep shrink factor")
	route := fs.String("route", "", "pace transfers over a standard link (e.g. Anvil->Bebop); empty = in-process")
	timescale := fs.Float64("timescale", 1e-3, "wall seconds slept per simulated link second")
	streams := fs.Int("streams", 0, "archives in flight at once (0 = link concurrency)")
	chunkMB := fs.Float64("chunk-mb", 0, "chunk-parallel compression: raw MB per chunk fanned out over the faas endpoint (0 = monolithic fields)")
	compressWorkers := fs.Int("compress-workers", 0, "fan-out endpoint workers for chunk compression (0 = -workers)")
	codecList := fs.String("codec", "sz3", "compressor for fixed campaigns; with -adaptive a comma-separated candidate grid (e.g. sz3,szx); valid: "+strings.Join(codec.Names(), ", "))
	corruptProb := fs.Float64("corrupt-prob", 0, "fault drill: corrupt each delivered archive with this probability (requires -route)")
	retries := fs.Int("retries", 0, "max attempts per transient failure, including retransmits of corrupted archives (0 = default policy)")
	boundAudit := fs.Int("bound-audit", 0, "post-decompress bound audit stride: 1 checks every point, N samples every Nth (0 = full audit, the default)")
	quarantine := fs.Bool("quarantine", false, "re-ship bound-violating fields lossless instead of failing the campaign")
	journalPath := fs.String("journal", "", "write a durable campaign journal to this path")
	resumeFrom := fs.String("resume", "", "resume an interrupted campaign from this journal (typically the -journal path)")
	killAfter := fs.Int64("kill-after-groups", 0, "crash drill: cancel once this many groups are sent (requires -journal)")
	tracePath := fs.String("trace", "", "write a Chrome trace_event JSON trace of the campaign (load in chrome://tracing or Perfetto)")
	traceNDJSON := fs.String("trace-ndjson", "", "write the campaign's span trace as NDJSON, one span per line")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this path")
	memProfile := fs.String("memprofile", "", "write a heap profile to this path on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *killAfter > 0 && *journalPath == "" {
		return errors.New("campaign: -kill-after-groups requires -journal")
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("campaign: cpuprofile: %w", err)
		}
		if err := rpprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("campaign: cpuprofile: %w", err)
		}
		defer func() {
			rpprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "campaign: memprofile:", err)
				return
			}
			runtime.GC() // settle the heap so the profile reflects live data
			if err := rpprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "campaign: memprofile:", err)
			}
			f.Close()
		}()
	}

	fields, err := campaignFields(*app, *nFields, *shrink, *seed)
	if err != nil {
		return fmt.Errorf("campaign: %w", err)
	}

	fixedCodec := *codecList
	if *adaptive {
		// The plan decides per-field codecs; the global knob stays default.
		fixedCodec = ""
	} else if strings.Contains(fixedCodec, ",") {
		return fmt.Errorf("campaign: -codec accepts a list only with -adaptive (got %q)", fixedCodec)
	}
	spec := core.CampaignSpec{
		RelErrorBound:   *eb,
		Workers:         *workers,
		GroupParam:      *groups,
		Codec:           fixedCodec,
		Engine:          core.EngineSequential,
		TransferStreams: *streams,
		ChunkMB:         *chunkMB,
		CompressWorkers: *compressWorkers,
		Journal:         *journalPath,
		ResumeFrom:      *resumeFrom,
		BoundAudit:      core.BoundAudit{Stride: *boundAudit, Quarantine: *quarantine},
	}
	if *retries > 0 {
		spec.Retry = sentinel.RetryPolicy{MaxAttempts: *retries}
	}
	if *corruptProb > 0 && *route == "" {
		return errors.New("campaign: -corrupt-prob requires -route (corruption is injected on the simulated link)")
	}
	if *route != "" {
		link, ok := wan.StandardLinks()[*route]
		if !ok {
			return fmt.Errorf("campaign: unknown route %q (have: Anvil->Cori, Anvil->Bebop, Bebop->Cori, Cori->Bebop)", *route)
		}
		if *corruptProb > 0 {
			link.Faults = &wan.Faults{CorruptProb: *corruptProb, CorruptMode: wan.CorruptMix, Seed: *seed}
		}
		spec.Transport = &core.SimulatedWANTransport{Link: link, Timescale: *timescale}
	}

	// Tracing requested: wire a live tracer (and a registry, so the result
	// also carries the inline metrics snapshot) into the spec, and flush
	// the exports however the run ends.
	var tracer *obs.Tracer
	if *tracePath != "" || *traceNDJSON != "" {
		tracer = obs.NewTracer()
		spec.Obs = &obs.Obs{Tracer: tracer, Metrics: obs.NewRegistry()}
	}
	exportTraces := func() error {
		if tracer == nil {
			return nil
		}
		if *tracePath != "" {
			if err := writeTraceFile(*tracePath, tracer.WriteChrome); err != nil {
				return fmt.Errorf("campaign: trace: %w", err)
			}
			fmt.Printf("trace: %d spans -> %s (chrome://tracing)\n", len(tracer.Spans()), *tracePath)
		}
		if *traceNDJSON != "" {
			if err := writeTraceFile(*traceNDJSON, tracer.WriteNDJSON); err != nil {
				return fmt.Errorf("campaign: trace-ndjson: %w", err)
			}
			fmt.Printf("trace: %d spans -> %s (ndjson)\n", len(tracer.Spans()), *traceNDJSON)
		}
		return nil
	}

	ctx := context.Background()
	engine := "sequential"
	switch {
	case *adaptive:
		engine = "adaptive"
		cands, err := codecCandidates(*codecList)
		if err != nil {
			return fmt.Errorf("campaign: %w", err)
		}
		fmt.Printf("training quality model (sweep at shrink %d, codecs %s)...\n", *trainShrink, *codecList)
		model, err := trainPlannerModel(*app, *nFields, *trainShrink, *seed, cands)
		if err != nil {
			return err
		}
		spec.Engine = core.EnginePipelined
		spec.Adaptive = true
		spec.Model = model
		spec.Planner = planner.Options{Candidates: cands, MinPSNR: *minPSNR, Seed: *seed}
	case *pipelined:
		engine = "pipelined"
		spec.Engine = core.EnginePipelined
	}
	var res *core.CampaignResult
	if *killAfter > 0 {
		// Crash drill: run the campaign on a handle, cancel it once the
		// requested number of groups shipped, and point at the journal the
		// dead campaign left behind.
		h, err := core.Submit(ctx, fields, spec)
		if err != nil {
			return err
		}
		go func() {
			for {
				select {
				case <-h.Done():
					return
				case <-time.After(2 * time.Millisecond):
				}
				if h.Status().SentGroups >= *killAfter {
					h.Cancel()
					return
				}
			}
		}()
		<-h.Done()
		if h.State() == core.CampaignCanceled {
			fmt.Printf("campaign killed after %d sent group(s); journal at %s\n", *killAfter, *journalPath)
			fmt.Printf("resume with: ocelot campaign <same flags> -journal %s -resume %s\n", *journalPath, *journalPath)
			return exportTraces()
		}
		if res, err = h.Result(); err != nil {
			return err
		}
		fmt.Printf("campaign finished before the %d-group kill point\n", *killAfter)
	} else if res, err = core.Run(ctx, fields, spec); err != nil {
		return err
	}
	if err := exportTraces(); err != nil {
		return err
	}

	if res.Resumed {
		fmt.Printf("resumed from %s: skipped %d already-acked group(s), %.1f MB not resent\n",
			*resumeFrom, res.SkippedGroups, float64(res.SkippedBytes)/1e6)
	}
	fmt.Printf("%s campaign [%s]: %d %s fields, %.1f MB raw -> %.1f MB in %d groups (ratio %.1f)\n",
		engine, res.Codec, res.Files, *app, float64(res.RawBytes)/1e6,
		float64(res.GroupedBytes)/1e6, res.Groups, res.Ratio)
	if res.Chunks > 0 {
		fmt.Printf("chunk fan-out: %d chunks (%.1f MB each) over %d endpoint workers\n",
			res.Chunks, *chunkMB, res.CompressWorkers)
	}
	fmt.Printf("wall %.3fs  [compress %.3fs | pack %.3fs | transfer %.3fs | decompress %.3fs]\n",
		res.WallSec, res.CompressSec, res.PackSec, res.TransferSec, res.DecompressSec)
	if res.LinkSec > 0 {
		fmt.Printf("simulated link time: %.2fs over %s\n", res.LinkSec, *route)
	}
	if res.Retries > 0 || res.Failovers > 0 {
		fmt.Printf("fault recovery: %d transient retries, %d endpoint failovers\n", res.Retries, res.Failovers)
	}
	if res.CorruptGroups > 0 {
		fmt.Printf("integrity: %d corrupted group(s) detected, %d retransmit(s), %.1f MB resent\n",
			res.CorruptGroups, res.Retransmits, float64(res.RetransmitBytes)/1e6)
	}
	if len(res.DegradedFields) > 0 {
		fmt.Printf("bound audit: %d field(s) quarantined and re-shipped lossless (%.1f MB): %s\n",
			len(res.DegradedFields), float64(res.DegradedBytes)/1e6, strings.Join(res.DegradedFields, ", "))
	}
	if res.ReconDigest != 0 {
		fmt.Printf("recon digest: %016x\n", res.ReconDigest)
	}
	if res.Planned {
		fmt.Printf("\nplan (%.3fs to decide):\n%s", res.PlanSec, res.Plan.String())
		fmt.Printf("\npredicted vs actual:\n")
		fmt.Printf("  ratio:        %8.1f predicted   %8.1f actual\n", res.PredRatio, res.Ratio)
		fmt.Printf("  compress (s): %8.2f predicted   %8.2f actual\n", res.PredCompressSec, res.CompressSec)
		fmt.Printf("  transfer (s): %8.2f predicted   %8.2f actual (link makespan over realized archives)\n",
			res.PredTransferSec, res.LinkEstSec)
		fmt.Printf("  wall (s):     %8.2f predicted   %8.2f actual (timescale %g)\n", res.PredWallSec, res.WallSec, *timescale)
		if *minPSNR > 0 {
			fmt.Printf("  quality floor: min PSNR %.1f dB measured (floor %.1f dB)\n", res.MinPSNR, *minPSNR)
		}
		fmt.Printf("max relative error %.2e ✓\n", res.MaxRelError)
	} else {
		fmt.Printf("max relative error %.2e (bound %.0e) ✓\n", res.MaxRelError, *eb)
	}
	fmt.Printf("\nper-stage ledger:\n%-12s %8s %7s %12s %12s %10s\n", "stage", "workers", "items", "busy (s)", "span (s)", "MB/s")
	for _, s := range res.Stages {
		fmt.Printf("%-12s %8d %7d %12.3f %12.3f %10.1f\n", s.Name, s.Workers, s.Items, s.BusySec, s.WallSec, s.MBps)
	}
	fmt.Printf("\noverlap: %.3fs of stage time ran concurrently\n", res.OverlapSec)
	return nil
}

func routeMachines(route string, machines map[string]*cluster.Machine) (src, dst *cluster.Machine) {
	switch route {
	case "Anvil->Cori":
		return machines["Anvil"], machines["Cori"]
	case "Anvil->Bebop":
		return machines["Anvil"], machines["Bebop"]
	case "Bebop->Cori":
		return machines["Bebop"], machines["Cori"]
	case "Cori->Bebop":
		return machines["Cori"], machines["Bebop"]
	default:
		return machines["Anvil"], machines["Cori"]
	}
}
