package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"ocelot/internal/serve"
)

// fastWatchBackoff shrinks the reconnect clock so the tests run in
// milliseconds.
func fastWatchBackoff(t *testing.T) {
	t.Helper()
	base, max := watchBaseBackoff, watchMaxBackoff
	watchBaseBackoff, watchMaxBackoff = time.Millisecond, 2*time.Millisecond
	t.Cleanup(func() { watchBaseBackoff, watchMaxBackoff = base, max })
}

// TestWatchJobReconnectsAcrossDrops is the regression for the watch client
// exiting on a transient stream drop: the first two connections die
// mid-stream after one snapshot each, the third runs to terminal, and
// watchJob must ride through all of it and return success.
func TestWatchJobReconnectsAcrossDrops(t *testing.T) {
	fastWatchBackoff(t)
	var conns atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := conns.Add(1)
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		if n <= 2 {
			// One live snapshot, then the connection dies mid-stream.
			_ = enc.Encode(serve.JobStatus{ID: "c-1", State: "running"})
			w.(http.Flusher).Flush()
			panic(http.ErrAbortHandler)
		}
		_ = enc.Encode(serve.JobStatus{ID: "c-1", State: "running"})
		_ = enc.Encode(serve.JobStatus{ID: "c-1", State: "done", Terminal: true})
	}))
	defer ts.Close()

	if err := watchJob(ts.URL, "c-1"); err != nil {
		t.Fatalf("watchJob did not survive stream drops: %v", err)
	}
	if got := conns.Load(); got != 3 {
		t.Errorf("watch connections = %d, want 3 (two drops + one clean run)", got)
	}
}

// TestWatchJobBoundedRetries: a stream that never yields a snapshot
// exhausts the reconnect budget instead of looping forever.
func TestWatchJobBoundedRetries(t *testing.T) {
	fastWatchBackoff(t)
	var conns atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conns.Add(1)
		panic(http.ErrAbortHandler)
	}))
	defer ts.Close()

	if err := watchJob(ts.URL, "c-1"); err == nil {
		t.Fatal("watchJob returned success from a stream that never produced a snapshot")
	}
	if got := conns.Load(); got != int32(watchMaxRetries)+1 {
		t.Errorf("watch connections = %d, want %d (initial + budget)", got, watchMaxRetries+1)
	}
}

// TestWatchJobTerminalFailure: a campaign that finishes failed surfaces
// the failure as an error, not a silent success.
func TestWatchJobTerminalFailure(t *testing.T) {
	fastWatchBackoff(t)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(serve.JobStatus{ID: "c-1", State: "failed", Terminal: true, Error: "boom"})
	}))
	defer ts.Close()

	if err := watchJob(ts.URL, "c-1"); err == nil {
		t.Fatal("watchJob reported success for a failed campaign")
	}
}
