// Command ocelot-bench regenerates every table and figure of the paper's
// evaluation section from the Go reproduction.
//
// Usage:
//
//	ocelot-bench [-shrink N] [-seed S] [-only "Table VIII,Fig 9"]
//
// Output is the text rendering of each artifact, emitted in the canonical
// order of experiments.Drivers (see docs/ARCHITECTURE.md for the artifact
// index).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ocelot/internal/codec"
	"ocelot/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ocelot-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ocelot-bench", flag.ContinueOnError)
	shrink := fs.Int("shrink", 16, "divide every dataset dimension by this factor")
	seed := fs.Int64("seed", 42, "experiment seed")
	only := fs.String("only", "", "comma-separated artifact IDs to run (default: all)")
	codecName := fs.String("codec", "", "codec for single-codec campaign artifacts (valid: "+strings.Join(codec.Names(), ", ")+"; default sz3)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if _, err := codec.Normalize(*codecName); err != nil {
		return err
	}
	scale := experiments.Scale{Shrink: *shrink, Seed: *seed, Codec: *codecName}

	// The shared registry is the single ordering authority: artifacts are
	// always emitted in its canonical order (deterministic run-to-run), so
	// archived BENCH_*.json trajectories stay comparable across PRs.
	drivers := experiments.Drivers()

	var wanted map[string]bool
	if *only != "" {
		wanted = map[string]bool{}
		for _, id := range strings.Split(*only, ",") {
			wanted[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}

	fmt.Printf("ocelot-bench: reproducing the ICDCS'23 Ocelot evaluation (shrink=%d seed=%d)\n\n",
		*shrink, *seed)
	start := time.Now()
	ran := 0
	for _, d := range drivers {
		if wanted != nil && !wanted[strings.ToLower(d.ID)] {
			continue
		}
		t0 := time.Now()
		res, err := d.Fn(scale)
		if err != nil {
			return fmt.Errorf("%s: %w", d.ID, err)
		}
		fmt.Println(strings.Repeat("=", 78))
		fmt.Println(res.Text)
		fmt.Printf("[%s regenerated in %.2fs]\n\n", d.ID, time.Since(t0).Seconds())
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no artifacts matched -only=%q", *only)
	}
	fmt.Printf("done: %d artifacts in %.1fs\n", ran, time.Since(start).Seconds())
	return nil
}
