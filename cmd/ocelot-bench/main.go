// Command ocelot-bench regenerates every table and figure of the paper's
// evaluation section from the Go reproduction.
//
// Usage:
//
//	ocelot-bench [-shrink N] [-seed S] [-only "Table VIII,Fig 9"]
//
// Output is the text rendering of each artifact; see DESIGN.md §4 for the
// experiment index and EXPERIMENTS.md for an archived run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ocelot/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ocelot-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ocelot-bench", flag.ContinueOnError)
	shrink := fs.Int("shrink", 16, "divide every dataset dimension by this factor")
	seed := fs.Int64("seed", 42, "experiment seed")
	only := fs.String("only", "", "comma-separated artifact IDs to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	scale := experiments.Scale{Shrink: *shrink, Seed: *seed}

	type driver struct {
		id string
		fn func(experiments.Scale) (*experiments.Result, error)
	}
	drivers := []driver{
		{"Table I", experiments.TableI},
		{"Table II", experiments.TableII},
		{"Fig 4", experiments.Fig4},
		{"Fig 5", experiments.Fig5},
		{"Fig 6", experiments.Fig6},
		{"Fig 7", experiments.Fig7},
		{"Fig 8", experiments.Fig8},
		{"Fig 9", experiments.Fig9},
		{"Table V", experiments.TableV},
		{"Table VI", experiments.TableVI},
		{"Table VII", experiments.TableVII},
		{"Fig 12", experiments.Fig12},
		{"Fig 13", experiments.Fig13},
		{"Fig 14", experiments.Fig14},
		{"Fig 15", experiments.Fig15},
		{"Table VIII", experiments.TableVIII},
		{"Fig 16", experiments.Fig16},
		{"Pipeline", experiments.PipelineOverlap},
		{"Planner", experiments.Planner},
	}

	var wanted map[string]bool
	if *only != "" {
		wanted = map[string]bool{}
		for _, id := range strings.Split(*only, ",") {
			wanted[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}

	fmt.Printf("ocelot-bench: reproducing the ICDCS'23 Ocelot evaluation (shrink=%d seed=%d)\n\n",
		*shrink, *seed)
	start := time.Now()
	ran := 0
	for _, d := range drivers {
		if wanted != nil && !wanted[strings.ToLower(d.id)] {
			continue
		}
		t0 := time.Now()
		res, err := d.fn(scale)
		if err != nil {
			return fmt.Errorf("%s: %w", d.id, err)
		}
		fmt.Println(strings.Repeat("=", 78))
		fmt.Println(res.Text)
		fmt.Printf("[%s regenerated in %.2fs]\n\n", d.id, time.Since(t0).Seconds())
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no artifacts matched -only=%q", *only)
	}
	fmt.Printf("done: %d artifacts in %.1fs\n", ran, time.Since(start).Seconds())
	return nil
}
