GO ?= go

.PHONY: build test race bench bench-json bench-hotpath bench-serve bench-resume bench-obs bench-integrity fuzz-smoke lint cover tier1 plan-smoke serve-smoke resume-smoke integrity-smoke doc-check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmark smoke pass: compile and run every benchmark exactly once.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Machine-readable benchmarks: regenerates the CodecShootout artifact
# (wall/ratio/PSNR per codec/link → BENCH_codecs.json), the HotPath
# artifact (entropy hot-path MB/s vs the pinned pre-overhaul reference →
# BENCH_hotpath.json), the ServeFairness artifact (multi-tenant scheduler
# fairness/throughput/cancel latency → BENCH_serve.json), and the
# FaultResume artifact (crash-resume digest identity, resent-bytes
# fraction, flap retries → BENCH_resume.json), and the ObsOverhead
# artifact (instrumented-but-disabled vs baseline campaign wall →
# BENCH_obs.json), so all perf trajectories are tracked as diffable
# files.
bench-json:
	$(GO) run ./tools/benchjson -shrink 24 -out BENCH_codecs.json \
		-hotpath-out BENCH_hotpath.json -serve-out BENCH_serve.json \
		-resume-out BENCH_resume.json -obs-out BENCH_obs.json \
		-integrity-out BENCH_integrity.json

# Multi-tenant serve load test alone: regenerates BENCH_serve.json (Jain
# fairness index, per-tenant and aggregate MB/s, cancel latency).
bench-serve:
	$(GO) run ./tools/benchjson -shrink 24 -out '' -hotpath-out '' \
		-serve-out BENCH_serve.json -resume-out '' -obs-out ''

# Fault-tolerance artifact alone: regenerates BENCH_resume.json (resume
# wall vs full-rerun wall, resent-bytes fraction, retry/fail-fast counts).
bench-resume:
	$(GO) run ./tools/benchjson -shrink 24 -out '' -hotpath-out '' \
		-serve-out '' -resume-out BENCH_resume.json -obs-out ''

# Observability-overhead artifact alone: regenerates BENCH_obs.json
# (instrumented-but-disabled vs baseline wall, acceptance < 2%, plus
# span/metric coverage from one enabled run).
bench-obs:
	$(GO) run ./tools/benchjson -shrink 24 -out '' -hotpath-out '' \
		-serve-out '' -resume-out '' -obs-out BENCH_obs.json

# End-to-end integrity artifact alone: regenerates BENCH_integrity.json
# (corrupted-link digest identity, injected-vs-detected reconciliation,
# retransmit ledger, bound-guarantee quarantine coverage).
bench-integrity:
	$(GO) run ./tools/benchjson -shrink 24 -out '' -hotpath-out '' \
		-serve-out '' -resume-out '' -obs-out '' \
		-integrity-out BENCH_integrity.json

# Entropy hot-path throughput benchmarks in smoke mode: compile and run
# each once so the tracked figures cannot rot between bench-json refreshes.
bench-hotpath:
	$(GO) test -run='^$$' -bench='BenchmarkHuffmanEncode|BenchmarkHuffmanDecode|BenchmarkSZ3Throughput' \
		-benchtime=1x .

# Short fuzz pass over the stream parsers, the daemon wire layer, the
# campaign journal, and the archive integrity frame: crafted streams
# (including unknown codec magic), arbitrary HTTP bodies, corrupted journal
# manifests, and mutated OCIF frames must error, never panic. Each target
# fuzzes briefly from its checked-in seed corpus
# (internal/sz/testdata/fuzz, internal/serve/testdata/fuzz,
# internal/journal/testdata/fuzz, internal/integrity/testdata/fuzz).
fuzz-smoke:
	$(GO) test ./internal/sz -run='^$$' -fuzz=FuzzHeaderParse -fuzztime=5s
	$(GO) test ./internal/sz -run='^$$' -fuzz=FuzzSplitChunked -fuzztime=5s
	$(GO) test ./internal/sz -run='^$$' -fuzz=FuzzDecompress -fuzztime=10s
	$(GO) test ./internal/serve -run='^$$' -fuzz=FuzzServeAPI -fuzztime=5s
	$(GO) test ./internal/journal -run='^$$' -fuzz=FuzzJournalManifest -fuzztime=5s
	$(GO) test ./internal/integrity -run='^$$' -fuzz=FuzzIntegrityFrame -fuzztime=5s

# Static gate: gofmt, go vet, and the project's own invariant analyzers
# (tools/ocelotvet — alloc caps, pool discipline, context flow, bound
# resolution, span discipline; see ARCHITECTURE.md "Enforced invariants"). staticcheck and
# govulncheck run when installed; the container image does not bake them
# in, so they are advisory locally and real wherever they exist.
lint:
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./tools/ocelotvet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
		else echo "lint: staticcheck not installed, skipping"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
		else echo "lint: govulncheck not installed, skipping"; fi

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# The repo's tier-1 verification command.
tier1:
	$(GO) build ./... && $(GO) test ./...

# Godoc coverage gate: fails when the facade, campaign engine, planner,
# codec registry, szx codec, serve daemon, campaign journal, or the
# ocelotvet analyzer suite export an undocumented symbol (tools/doccheck).
doc-check:
	$(GO) run ./tools/doccheck . ./internal/core ./internal/planner \
		./internal/codec ./internal/szx ./internal/serve \
		./internal/journal ./internal/obs ./internal/integrity \
		./tools/ocelotvet ./tools/ocelotvet/alloccap \
		./tools/ocelotvet/poolsafe ./tools/ocelotvet/ctxflow \
		./tools/ocelotvet/boundres ./tools/ocelotvet/spanend \
		./tools/ocelotvet/internal/analysis \
		./tools/ocelotvet/internal/load

# Daemon round-trip smoke: start `ocelot serve`, submit a campaign over
# HTTP and watch it to completion, submit a second and cancel it, list
# both, then shut the daemon down.
serve-smoke:
	@set -e; tmp=$$(mktemp -d); trap 'kill $$pid 2>/dev/null; rm -rf $$tmp' EXIT; \
	$(GO) build -o $$tmp/ocelot ./cmd/ocelot; \
	$$tmp/ocelot serve -addr 127.0.0.1:9177 -route 'Anvil->Bebop' -timescale 1e-2 \
		-tenants climate:2,physics:1 & pid=$$!; \
	sleep 1; \
	$$tmp/ocelot submit -server http://127.0.0.1:9177 -tenant climate \
		-fields 4 -shrink 40 -watch; \
	$$tmp/ocelot submit -server http://127.0.0.1:9177 -tenant physics \
		-fields 8 -shrink 24 -eb 1e-4; \
	$$tmp/ocelot cancel -server http://127.0.0.1:9177 -id c-2; \
	$$tmp/ocelot campaigns -server http://127.0.0.1:9177

# Crash-resume smoke through the real CLI: run a journaled campaign, kill
# it after one sent group, resume from the journal, and check the resumed
# run reports both the skip and a reconstruction digest. The digest's
# bit-identity to an uninterrupted run is asserted by the FaultResume
# artifact and the crash-resume property tests; this target proves the
# flags wire through the shipped binary.
resume-smoke:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf $$tmp' EXIT; \
	$(GO) build -o $$tmp/ocelot ./cmd/ocelot; \
	$$tmp/ocelot campaign -app CESM -fields 4 -shrink 40 -pipeline -groups 4 \
		-route 'Anvil->Bebop' -timescale 0.05 \
		-journal $$tmp/run.ocjl -kill-after-groups 1; \
	$$tmp/ocelot campaign -app CESM -fields 4 -shrink 40 -pipeline -groups 4 \
		-journal $$tmp/run.ocjl -resume $$tmp/run.ocjl | tee $$tmp/resume.out; \
	grep -q 'resumed from' $$tmp/resume.out; \
	grep -q 'recon digest' $$tmp/resume.out; \
	echo "resume-smoke: ok"

# Corruption-recovery smoke through the real CLI: run a campaign over a
# link that corrupts half its deliveries and check the integrity ledger
# reports detected corruptions and retransmits. Digest identity and
# only-corrupted-resent are asserted by the Integrity artifact and the
# core property tests; this target proves the flags wire through the
# shipped binary.
integrity-smoke:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf $$tmp' EXIT; \
	$(GO) build -o $$tmp/ocelot ./cmd/ocelot; \
	$$tmp/ocelot campaign -app CESM -fields 8 -shrink 40 -pipeline -groups 8 \
		-route 'Anvil->Bebop' -timescale -1 -seed 7 \
		-corrupt-prob 0.5 -retries 8 | tee $$tmp/integrity.out; \
	grep -q 'integrity: .* corrupted group(s) detected' $$tmp/integrity.out; \
	grep -q 'max relative error' $$tmp/integrity.out; \
	echo "integrity-smoke: ok"

# Planner smoke: train-on-sweep + plan + adaptive campaign on small
# synthetic fields, so the closed predict-then-transfer loop can't rot.
plan-smoke:
	$(GO) run ./cmd/ocelot plan -app CESM -fields 6 -shrink 40 -train-shrink 64 \
		-route 'Anvil->Bebop' -min-psnr 70
	$(GO) run ./cmd/ocelot campaign -adaptive -app CESM -fields 6 -shrink 40 \
		-train-shrink 64 -route 'Anvil->Bebop' -min-psnr 70 -timescale 1e-3
	$(GO) run ./cmd/ocelot-bench -shrink 32 -only Planner
