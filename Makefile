GO ?= go

.PHONY: build test race bench lint cover tier1 plan-smoke doc-check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmark smoke pass: compile and run every benchmark exactly once.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

lint:
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) vet ./...

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# The repo's tier-1 verification command.
tier1:
	$(GO) build ./... && $(GO) test ./...

# Godoc coverage gate: fails when the facade, campaign engine, or planner
# export an undocumented symbol (tools/doccheck).
doc-check:
	$(GO) run ./tools/doccheck . ./internal/core ./internal/planner

# Planner smoke: train-on-sweep + plan + adaptive campaign on small
# synthetic fields, so the closed predict-then-transfer loop can't rot.
plan-smoke:
	$(GO) run ./cmd/ocelot plan -app CESM -fields 6 -shrink 40 -train-shrink 64 \
		-route 'Anvil->Bebop' -min-psnr 70
	$(GO) run ./cmd/ocelot campaign -adaptive -app CESM -fields 6 -shrink 40 \
		-train-shrink 64 -route 'Anvil->Bebop' -min-psnr 70 -timescale 1e-3
	$(GO) run ./cmd/ocelot-bench -shrink 32 -only Planner
