GO ?= go

.PHONY: build test race bench lint cover tier1

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmark smoke pass: compile and run every benchmark exactly once.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

lint:
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) vet ./...

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# The repo's tier-1 verification command.
tier1:
	$(GO) build ./... && $(GO) test ./...
