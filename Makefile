GO ?= go

.PHONY: build test race bench bench-json bench-hotpath fuzz-smoke lint cover tier1 plan-smoke doc-check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmark smoke pass: compile and run every benchmark exactly once.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Machine-readable benchmarks: regenerates the CodecShootout artifact
# (wall/ratio/PSNR per codec/link → BENCH_codecs.json) and the HotPath
# artifact (entropy hot-path MB/s vs the pinned pre-overhaul reference →
# BENCH_hotpath.json), so both perf trajectories are tracked as diffable
# files.
bench-json:
	$(GO) run ./tools/benchjson -shrink 24 -out BENCH_codecs.json \
		-hotpath-out BENCH_hotpath.json

# Entropy hot-path throughput benchmarks in smoke mode: compile and run
# each once so the tracked figures cannot rot between bench-json refreshes.
bench-hotpath:
	$(GO) test -run='^$$' -bench='BenchmarkHuffmanEncode|BenchmarkHuffmanDecode|BenchmarkSZ3Throughput' \
		-benchtime=1x .

# Short fuzz pass over the stream parsers: crafted streams (including
# unknown codec magic) must error, never panic. Each target fuzzes briefly
# from the checked-in seed corpus in internal/sz/testdata/fuzz.
fuzz-smoke:
	$(GO) test ./internal/sz -run='^$$' -fuzz=FuzzHeaderParse -fuzztime=5s
	$(GO) test ./internal/sz -run='^$$' -fuzz=FuzzSplitChunked -fuzztime=5s
	$(GO) test ./internal/sz -run='^$$' -fuzz=FuzzDecompress -fuzztime=10s

lint:
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) vet ./...

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# The repo's tier-1 verification command.
tier1:
	$(GO) build ./... && $(GO) test ./...

# Godoc coverage gate: fails when the facade, campaign engine, planner,
# codec registry, or szx codec export an undocumented symbol
# (tools/doccheck).
doc-check:
	$(GO) run ./tools/doccheck . ./internal/core ./internal/planner \
		./internal/codec ./internal/szx

# Planner smoke: train-on-sweep + plan + adaptive campaign on small
# synthetic fields, so the closed predict-then-transfer loop can't rot.
plan-smoke:
	$(GO) run ./cmd/ocelot plan -app CESM -fields 6 -shrink 40 -train-shrink 64 \
		-route 'Anvil->Bebop' -min-psnr 70
	$(GO) run ./cmd/ocelot campaign -adaptive -app CESM -fields 6 -shrink 40 \
		-train-shrink 64 -route 'Anvil->Bebop' -min-psnr 70 -timescale 1e-3
	$(GO) run ./cmd/ocelot-bench -shrink 32 -only Planner
