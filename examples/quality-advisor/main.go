// Quality-advisor: the paper's capability #1. Train the compression-quality
// predictor on a corpus, then — without compressing — rank candidate error
// bounds for a new field and pick the most aggressive setting that still
// meets a PSNR target, finally validating the choice with a real run.
package main

import (
	"fmt"
	"log"

	"ocelot"
	"ocelot/internal/metrics"
	"ocelot/internal/sz"
)

func main() {
	// Train on a mixed corpus (climate + hydrodynamics + hurricane).
	var corpus []*ocelot.Field
	for _, spec := range []struct {
		app    string
		fields []string
	}{
		{"CESM", []string{"TMQ", "CLDHGH", "FLDSC", "LHFLX", "PSL", "TREFHT"}},
		{"Miranda", []string{"density", "velocityx", "pressure"}},
		{"ISABEL", []string{"Pf48", "QVAPORf48", "Wf48"}},
	} {
		for _, name := range spec.fields {
			f, err := ocelot.GenerateField(spec.app, name, 28, 7)
			if err != nil {
				log.Fatal(err)
			}
			corpus = append(corpus, f)
		}
	}
	model, err := ocelot.TrainQualityModel(corpus, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained quality model on %d fields\n\n", len(corpus))

	// A new, unseen field arrives.
	target, err := ocelot.GenerateField("CESM", "ICEFRAC", 28, 99)
	if err != nil {
		log.Fatal(err)
	}
	const psnrTarget = 60.0 // paper: PSNR > 50 dB means no visible difference
	fmt.Printf("advising for %s with PSNR target %.0f dB:\n", target.ID(), psnrTarget)
	fmt.Printf("  %-8s %10s %10s %10s\n", "rel-eb", "est ratio", "est PSNR", "est time")

	best := -1.0
	for _, eb := range []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1} {
		est, err := ocelot.EstimateQuality(model, target.Data, target.Dims, eb)
		if err != nil {
			log.Fatal(err)
		}
		marker := ""
		if est.PSNR >= psnrTarget && eb > best {
			best = eb
			marker = "  <- candidate"
		}
		fmt.Printf("  %-8.0e %10.1f %10.1f %9.3fs%s\n", eb, est.Ratio, est.PSNR, est.Seconds, marker)
	}
	if best < 0 {
		log.Fatal("no setting meets the PSNR target")
	}
	fmt.Printf("\nselected rel-eb = %.0e; validating with a real compression...\n", best)

	rng := metrics.ComputeRange(target.Data).Range
	cfg := sz.DefaultConfig(best * rng)
	stream, _, err := sz.Compress(target.Data, target.Dims, cfg)
	if err != nil {
		log.Fatal(err)
	}
	recon, _, err := sz.Decompress(stream)
	if err != nil {
		log.Fatal(err)
	}
	psnr, err := metrics.PSNR(target.Data, recon)
	if err != nil {
		log.Fatal(err)
	}
	ratio := ocelot.CompressionRatio(target.RawBytes(), len(stream))
	fmt.Printf("actual: ratio %.1f, PSNR %.1f dB (target %.0f)\n", ratio, psnr, psnrTarget)
}
