// Climate-transfer: the paper's motivating scenario. A CESM climate
// campaign (many 2-D fields) is compressed in parallel, packed into grouped
// archives, "shipped", unpacked, decompressed, and verified — then the same
// campaign is simulated at paper scale (7182 files, 1.61 TB) over the
// calibrated Anvil→Bebop link to show the end-to-end win.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"ocelot"
	"ocelot/internal/grouping"
)

func main() {
	// --- Real data path (laptop scale) ---
	fields := make([]*ocelot.Field, 0, 12)
	for _, name := range ocelot.FieldsOf("CESM")[:12] {
		f, err := ocelot.GenerateField("CESM", name, 20, 3)
		if err != nil {
			log.Fatal(err)
		}
		fields = append(fields, f)
	}
	res, err := ocelot.Run(context.Background(), fields, ocelot.CampaignSpec{
		RelErrorBound: 1e-3,
		Workers:       8,
		GroupStrategy: grouping.ByWorldSize,
		GroupParam:    4,
		Engine:        ocelot.EngineBarrier,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("real campaign: %d fields, %.1f MB raw -> %.1f MB in %d groups (ratio %.1f)\n",
		res.Files, float64(res.RawBytes)/1e6, float64(res.GroupedBytes)/1e6,
		res.Groups, res.Ratio)
	fmt.Printf("compress %.2fs, decompress %.2fs, max relative error %.2e ✓\n",
		res.CompressSec, res.DecompressSec, res.MaxRelError)

	machines := ocelot.StandardMachines()
	links := ocelot.StandardLinks()

	// --- Pipelined engine: ship groups while later fields compress ---
	// The same campaign runs on the streaming engine, paced by the
	// calibrated Anvil->Bebop link in real time (each group archive pays
	// the link's per-file overhead), first with hard phase barriers and
	// then pipelined.
	spec := ocelot.CampaignSpec{
		RelErrorBound:   1e-3,
		Workers:         8,
		GroupParam:      4,
		Transport:       &ocelot.SimulatedWANTransport{Link: links["Anvil->Bebop"], Timescale: 1},
		TransferStreams: 2,
	}
	seqSpec := spec
	seqSpec.Engine = ocelot.EngineSequential
	seq, err := ocelot.Run(context.Background(), fields, seqSpec)
	if err != nil {
		log.Fatal(err)
	}
	// The pipelined leg runs through the re-entrant handle API: Submit
	// returns immediately, Status is watchable while bytes move (the serve
	// daemon streams exactly these snapshots), and Wait joins the result.
	handle, err := ocelot.Submit(context.Background(), fields, spec)
	if err != nil {
		log.Fatal(err)
	}
	mid := handle.Status()
	for mid.SentGroups == 0 && !mid.State.Terminal() {
		time.Sleep(time.Millisecond)
		mid = handle.Status()
	}
	streamed, err := handle.Wait(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlive handle snapshot mid-campaign: state=%s, %d groups already shipped\n",
		mid.State, mid.SentGroups)
	fmt.Printf("\nstreaming engine over simulated Anvil->Bebop (real-time pacing):\n")
	fmt.Printf("  sequential phases: wall %.3fs\n", seq.WallSec)
	fmt.Printf("  pipelined stages:  wall %.3fs (%.3fs of stage time hidden by overlap)\n",
		streamed.WallSec, streamed.OverlapSec)
	for _, s := range streamed.Stages {
		fmt.Printf("    %-10s workers=%d items=%2d busy=%.3fs span=%.3fs\n",
			s.Name, s.Workers, s.Items, s.BusySec, s.WallSec)
	}

	// --- Chunk-parallel leg: fan compression out across FaaS workers ---
	// Every field is decomposed into ~4 chunks that are batch-submitted to
	// a funcX-style endpoint; the same campaign runs with the endpoint at 1
	// and at 8 workers. The per-chunk warm-start cost models the remote
	// dispatch, so endpoint width is a wall-clock lever even on small
	// machines — and the decompressed output is bit-identical either way
	// (the chunk plan depends only on shape and chunk size).
	chunkLeg := func(workers int) *ocelot.CampaignResult {
		r, err := ocelot.Run(context.Background(), fields, ocelot.CampaignSpec{
			RelErrorBound:   1e-3,
			Workers:         8,
			GroupParam:      4,
			Transport:       &ocelot.SimulatedWANTransport{Link: links["Anvil->Bebop"], Timescale: 1},
			ChunkMB:         float64(fields[0].RawBytes()) / 4 / 1e6,
			CompressWorkers: workers,
			ChunkEndpoint:   ocelot.EndpointConfig{ColdStart: 5 * time.Millisecond, WarmStart: 10 * time.Millisecond},
		})
		if err != nil {
			log.Fatal(err)
		}
		return r
	}
	narrow, wide := chunkLeg(1), chunkLeg(8)
	fmt.Printf("\nchunk-parallel compression (%d chunks over the FaaS endpoint):\n", wide.Chunks)
	fmt.Printf("  1 worker:  wall %.3fs (compress span %.3fs)\n", narrow.WallSec, narrow.CompressSec)
	fmt.Printf("  8 workers: wall %.3fs (compress span %.3fs) — %.1fx faster\n",
		wide.WallSec, wide.CompressSec, narrow.WallSec/wide.WallSec)
	if narrow.ReconDigest == wide.ReconDigest {
		fmt.Printf("  decompressed output bit-identical across worker counts ✓\n")
	} else {
		log.Fatalf("decompressed output DIFFERS across worker counts: %x vs %x",
			narrow.ReconDigest, wide.ReconDigest)
	}

	// --- Adaptive leg: the planner closes the predict-then-transfer loop ---
	// A quality model trained on shrunken stand-ins predicts ratio/speed/
	// PSNR per field; the planner assigns each field its own bound and
	// predictor under a 70 dB floor and picks the grouping, then the same
	// pipelined engine runs the plan. The result carries predicted vs
	// actual so the forecast is accountable.
	train := make([]*ocelot.Field, 0, len(fields))
	for _, name := range ocelot.FieldsOf("CESM")[:12] {
		f, err := ocelot.GenerateField("CESM", name, 40, 7)
		if err != nil {
			log.Fatal(err)
		}
		train = append(train, f)
	}
	model, err := ocelot.TrainPlannerModel(train)
	if err != nil {
		log.Fatal(err)
	}
	aspec := spec
	// The plan assumes the link's full concurrency is offered; 0 lets the
	// engine default the stream count from the transport's hint.
	aspec.TransferStreams = 0
	aspec.Adaptive = true
	aspec.Model = model
	aspec.Planner = ocelot.PlannerOptions{MinPSNR: 70}
	adaptive, err := ocelot.Run(context.Background(), fields, aspec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nadaptive campaign (planner, 70 dB floor):\n")
	fmt.Printf("  wall %.3fs (fixed pipelined: %.3fs); plan took %.3fs\n",
		adaptive.WallSec, streamed.WallSec, adaptive.PlanSec)
	fmt.Printf("  predicted vs actual: ratio %.1f/%.1f, transfer makespan %.3fs/%.3fs\n",
		adaptive.PredRatio, adaptive.Ratio, adaptive.PredTransferSec, adaptive.LinkEstSec)
	fmt.Printf("  min PSNR %.1f dB, max rel error %.2e\n", adaptive.MinPSNR, adaptive.MaxRelError)

	// --- Paper-scale simulation over the calibrated WAN ---
	pipe := &ocelot.Pipeline{Source: machines["Anvil"], Dest: machines["Bebop"], Link: links["Anvil->Bebop"]}
	campaign := ocelot.UniformFileSet("CESM", 7182, 224e6, res.Ratio)
	direct, err := pipe.Simulate(campaign, ocelot.TransferPlan{Mode: ocelot.TransferDirect, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	grouped, err := pipe.Simulate(campaign, ocelot.TransferPlan{
		Mode: ocelot.TransferGrouped, SourceNodes: 16, Seed: 1, GroupParam: 64,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated 1.61TB CESM campaign over Anvil->Bebop:\n")
	fmt.Printf("  direct:           %7.0fs\n", direct.TotalSec)
	fmt.Printf("  ocelot (grouped): %7.0fs  [cp %.0fs + xfer %.0fs + dp %.0fs]\n",
		grouped.TotalSec, grouped.CompressSec, grouped.TransferSec, grouped.DecompressSec)
	fmt.Printf("  time saved: %.0f%% (paper: 76%%)\n",
		100*(direct.TotalSec-grouped.TotalSec)/direct.TotalSec)
}
