// Seismic-RTM: parallel compression scaling on reverse-time-migration
// wavefield snapshots (the paper's Fig 9 scenario). Shows how worker count
// cuts compression wall time on the real executor, and the simulated
// node-scaling curve including the decompression I/O-contention cliff.
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"time"

	"ocelot"
	"ocelot/internal/executor"
	"ocelot/internal/sz"
)

func main() {
	// Generate a batch of RTM snapshots (expanding wavefronts).
	snaps := []string{"snap-0200", "snap-0594", "snap-1048", "snap-1400",
		"snap-1800", "snap-1982", "snap-2600", "snap-3200"}
	fields := make([]*ocelot.Field, 0, len(snaps))
	for _, s := range snaps {
		f, err := ocelot.GenerateField("RTM", s, 12, 1)
		if err != nil {
			log.Fatal(err)
		}
		fields = append(fields, f)
	}
	fmt.Printf("%d RTM snapshots, %v each\n", len(fields), fields[0].Dims)

	// Real parallel compression at increasing worker counts.
	maxWorkers := runtime.GOMAXPROCS(0)
	for workers := 1; workers <= maxWorkers; workers *= 2 {
		start := time.Now()
		_, err := executor.Map(context.Background(), workers, len(fields),
			func(ctx context.Context, i int) (int, error) {
				cfg := sz.DefaultConfig(1.0) // abs bound on ~±12k wavefield
				stream, _, err := sz.Compress(fields[i].Data, fields[i].Dims, cfg)
				if err != nil {
					return 0, err
				}
				return len(stream), nil
			})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %2d workers: %.2fs\n", workers, time.Since(start).Seconds())
	}

	// Simulated node-scaling on Anvil (Fig 9 shape).
	anvil := ocelot.StandardMachines()["Anvil"]
	sizes := make([]int64, 3601)
	for i := range sizes {
		sizes[i] = 189e6
	}
	fmt.Println("\nsimulated 682GB RTM campaign on Anvil (128 cores/node):")
	fmt.Printf("  %5s %14s %16s\n", "nodes", "compress (s)", "decompress (s)")
	for _, n := range []int{1, 2, 4, 8, 16} {
		fmt.Printf("  %5d %14.1f %16.1f\n", n,
			anvil.CompressTime(sizes, n), anvil.DecompressTime(sizes, n))
	}
	fmt.Println("  (note the decompression slowdown beyond 4 nodes: PFS write contention)")
}
