// Sentinel-failover: the paper's Section VII-B optimization. A transfer is
// requested while the batch queue is busy; the sentinel starts moving files
// uncompressed, and when compute nodes are finally granted the compression
// pipeline takes over the remaining files. Three queue scenarios are
// compared, including the worst case where nodes never arrive.
package main

import (
	"fmt"
	"log"

	"ocelot"
	"ocelot/internal/cluster"
	"ocelot/internal/sentinel"
	"ocelot/internal/sim"
)

func main() {
	machines := ocelot.StandardMachines()
	links := ocelot.StandardLinks()

	baseReq := func() *sentinel.Request {
		sizes := make([]int64, 3601) // RTM-like campaign
		for i := range sizes {
			sizes[i] = 189e6
		}
		return &sentinel.Request{
			RawSizes: sizes,
			Ratio:    15,
			Nodes:    16,
			Source:   machines["Bebop"],
			Dest:     machines["Cori"],
			Link:     links["Bebop->Cori"],
			Seed:     1,
		}
	}

	direct, err := links["Bebop->Cori"].Estimate(baseReq().RawSizes, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline direct transfer (no compression): %.0fs\n\n", direct.Seconds)

	scenarios := []struct {
		name  string
		setup func(*cluster.Scheduler)
	}{
		{"idle queue (nodes immediately)", func(s *cluster.Scheduler) {}},
		{"busy queue (~2 min wait)", func(s *cluster.Scheduler) { s.SetWaitModel(7, 120, 0, 0) }},
		{"hopeless queue (nodes never granted)", func(s *cluster.Scheduler) {
			// Occupy the whole machine forever.
			if err := s.Request(machines["Bebop"].Nodes, func() {}); err != nil {
				log.Fatal(err)
			}
		}},
	}
	for _, sc := range scenarios {
		clock := sim.NewClock()
		sched := cluster.NewScheduler(clock, machines["Bebop"])
		sc.setup(sched)
		res, err := sentinel.Run(clock, sched, baseReq())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", sc.name)
		if res.NodeWaitSeconds >= 0 {
			fmt.Printf("  nodes granted at t=%.0fs\n", res.NodeWaitSeconds)
		} else {
			fmt.Printf("  nodes never granted\n")
		}
		fmt.Printf("  %d files sent raw during the wait, %d compressed afterwards\n",
			res.RawFilesSent, res.CompressedFiles)
		fmt.Printf("  total %.0fs (vs %.0fs direct)", res.TotalSeconds, direct.Seconds)
		if res.WorstCase {
			fmt.Printf("  [worst case: degenerated to plain transfer, as designed]")
		}
		fmt.Println()
		fmt.Println()
	}
}
