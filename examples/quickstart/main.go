// Quickstart: compress a scientific field with an error bound, decompress
// it, and verify the guarantee — the minimal Ocelot workflow.
package main

import (
	"fmt"
	"log"

	"ocelot"
)

func main() {
	// 1. Get some scientific data (synthetic CESM total-precipitable-water).
	field, err := ocelot.GenerateField("CESM", "TMQ", 8, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("field %s: dims=%v (%d points, %.1f MB raw)\n",
		field.ID(), field.Dims, field.NumPoints(), float64(field.RawBytes())/1e6)

	// 2. Compress with an absolute error bound of 0.01 kg/m².
	cfg := ocelot.DefaultConfig(0.01)
	stream, stats, err := ocelot.Compress(field.Data, field.Dims, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compressed: %d -> %d bytes (ratio %.1f), p0=%.3f\n",
		field.RawBytes(), len(stream),
		ocelot.CompressionRatio(field.RawBytes(), len(stream)), stats.P0Quant)

	// 3. Decompress and verify the error bound held.
	recon, dims, err := ocelot.Decompress(stream)
	if err != nil {
		log.Fatal(err)
	}
	maxErr, err := ocelot.MaxAbsError(field.Data, recon)
	if err != nil {
		log.Fatal(err)
	}
	psnr, err := ocelot.PSNR(field.Data, recon)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reconstructed dims=%v max|err|=%.6f (bound 0.01) PSNR=%.1f dB\n",
		dims, maxErr, psnr)
	if maxErr > 0.01 {
		log.Fatal("error bound violated!")
	}
	fmt.Println("error bound verified ✓")
}
