// Facade smoke tests: every public entry point of package ocelot is
// exercised end-to-end at laptop-test scale — compression round-trips,
// quality prediction, transfer simulation, and both campaign engines.
package ocelot

import (
	"context"
	"testing"
)

func facadeField(t testing.TB, app, name string, shrink int) *Field {
	t.Helper()
	f, err := GenerateField(app, name, shrink, 7)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFacadeCompressRoundTrip(t *testing.T) {
	f := facadeField(t, "CESM", "TMQ", 24)
	cfg := DefaultConfig(1e-3)
	stream, stats, err := Compress(f.Data, f.Dims, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats == nil {
		t.Fatal("nil compression stats")
	}
	if len(stream) >= f.RawBytes() {
		t.Errorf("no compression: %d -> %d bytes", f.RawBytes(), len(stream))
	}
	recon, dims, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(recon) != len(f.Data) || len(dims) != len(f.Dims) {
		t.Fatalf("shape mismatch: %d points, dims %v", len(recon), dims)
	}
	maxErr, err := MaxAbsError(f.Data, recon)
	if err != nil {
		t.Fatal(err)
	}
	if maxErr > 1e-3*(1+1e-9) {
		t.Errorf("max error %g exceeds bound", maxErr)
	}
	psnr, err := PSNR(f.Data, recon)
	if err != nil {
		t.Fatal(err)
	}
	if psnr <= 0 {
		t.Errorf("PSNR = %g", psnr)
	}
	if r := CompressionRatio(f.RawBytes(), len(stream)); r <= 1 {
		t.Errorf("ratio = %g", r)
	}
}

func TestFacadePredictorConstants(t *testing.T) {
	f := facadeField(t, "Miranda", "density", 40)
	for _, p := range []Predictor{PredictorLorenzo, PredictorInterp, PredictorRegression} {
		cfg := DefaultConfig(1e-3)
		cfg.Predictor = p
		if _, _, err := Compress(f.Data, f.Dims, cfg); err != nil {
			t.Errorf("predictor %v: %v", p, err)
		}
	}
}

func TestFacadeDatasetCatalog(t *testing.T) {
	apps := Applications()
	if len(apps) == 0 {
		t.Fatal("no applications")
	}
	for _, app := range apps {
		if len(FieldsOf(app)) == 0 {
			t.Errorf("app %s has no fields", app)
		}
	}
	if FieldsOf("no-such-app") != nil {
		t.Error("unknown app should have no fields")
	}
}

func TestFacadeQualityPrediction(t *testing.T) {
	var corpus []*Field
	for _, name := range FieldsOf("CESM")[:4] {
		corpus = append(corpus, facadeField(t, "CESM", name, 40))
	}
	model, err := TrainQualityModel(corpus, false)
	if err != nil {
		t.Fatal(err)
	}
	target := facadeField(t, "CESM", "PSL", 40)
	est, err := EstimateQuality(model, target.Data, target.Dims, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if est.Ratio <= 0 {
		t.Errorf("predicted ratio = %g", est.Ratio)
	}
	blob, err := model.Save()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadQualityModel(blob)
	if err != nil {
		t.Fatal(err)
	}
	est2, err := EstimateQuality(loaded, target.Data, target.Dims, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if est2.Ratio != est.Ratio {
		t.Errorf("loaded model predicts %g, original %g", est2.Ratio, est.Ratio)
	}
}

func TestFacadeSimulate(t *testing.T) {
	machines := StandardMachines()
	links := StandardLinks()
	p := &Pipeline{Source: machines["Anvil"], Dest: machines["Bebop"], Link: links["Anvil->Bebop"]}
	fs := UniformFileSet("CESM", 7182, 224e6, 7.2)
	direct, cp, op, err := p.CompareModes(fs, TransferPlan{SourceNodes: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if direct.Mode != TransferDirect || cp.Mode != TransferCompressed || op.Mode != TransferGrouped {
		t.Error("mode labels wrong")
	}
	if op.TotalSec >= direct.TotalSec {
		t.Errorf("grouped (%.0fs) must beat direct (%.0fs)", op.TotalSec, direct.TotalSec)
	}
}

func TestFacadeCampaignEngines(t *testing.T) {
	var fields []*Field
	for _, name := range FieldsOf("CESM")[:6] {
		fields = append(fields, facadeField(t, "CESM", name, 40))
	}
	ctx := context.Background()
	classic, err := RunCampaign(ctx, fields, CampaignOptions{RelErrorBound: 1e-3, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if classic.Files != 6 || classic.Ratio <= 1 {
		t.Errorf("classic campaign: %+v", classic)
	}
	spec := CampaignSpec{
		RelErrorBound:   1e-3,
		Workers:         4,
		GroupParam:      3,
		Transport:       &SimulatedWANTransport{Link: StandardLinks()["Anvil->Cori"], Timescale: 1e-2},
		TransferStreams: 2,
	}
	pipe, err := Run(ctx, fields, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !pipe.Pipelined || pipe.Groups != 3 || len(pipe.Stages) != 4 {
		t.Errorf("pipelined campaign: groups=%d stages=%d", pipe.Groups, len(pipe.Stages))
	}
	if pipe.MaxRelError > 1e-3*(1+1e-9) {
		t.Errorf("bound violated: %g", pipe.MaxRelError)
	}
	seqSpec := spec
	seqSpec.Engine = EngineSequential
	seq, err := Run(ctx, fields, seqSpec)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Pipelined {
		t.Error("sequential run marked pipelined")
	}

	// The re-entrant handle path: Submit, watch the live status, Wait.
	handle, err := Submit(ctx, fields, spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := handle.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if st := handle.Status(); !st.State.Terminal() || st.SentGroups == 0 {
		t.Errorf("terminal handle status: %+v", st)
	}
}

func TestFacadePlannedCampaign(t *testing.T) {
	var fields, train []*Field
	for _, name := range FieldsOf("CESM")[:4] {
		fields = append(fields, facadeField(t, "CESM", name, 40))
		train = append(train, facadeField(t, "CESM", name, 64))
	}
	model, err := TrainPlannerModel(train)
	if err != nil {
		t.Fatal(err)
	}
	spec := CampaignSpec{
		Workers:   2,
		Transport: &SimulatedWANTransport{Link: StandardLinks()["Anvil->Cori"], Timescale: -1},
		Adaptive:  true,
		Model:     model,
		Planner:   PlannerOptions{MinPSNR: 70},
	}
	plan, err := PlanCampaignSpec(fields, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Fields) != 4 || plan.GroupParam < 1 {
		t.Fatalf("plan: %+v", plan)
	}
	res, err := Run(context.Background(), fields, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Planned || res.Plan == nil || res.PredRatio <= 0 || res.MinPSNR <= 0 {
		t.Errorf("planned campaign result incomplete: planned=%v predRatio=%g minPSNR=%g",
			res.Planned, res.PredRatio, res.MinPSNR)
	}
}

func TestFacadeChunkedCompression(t *testing.T) {
	f, err := GenerateField("CESM", "TMQ", 32, 3)
	if err != nil {
		t.Fatal(err)
	}
	plan := PlanChunks(f.Dims, f.NumPoints()/4)
	if len(plan) < 2 {
		t.Fatalf("field did not split: %d chunks", len(plan))
	}
	stream, _, err := CompressChunked(f.Data, f.Dims, DefaultConfig(1e-3), f.NumPoints()/4)
	if err != nil {
		t.Fatal(err)
	}
	if !IsChunkedStream(stream) {
		t.Fatal("CompressChunked did not produce a chunked container")
	}
	recon, dims, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(recon) != f.NumPoints() || len(dims) != len(f.Dims) {
		t.Fatalf("round trip shape mismatch: %d points, dims %v", len(recon), dims)
	}
	maxErr, err := MaxAbsError(f.Data, recon)
	if err != nil {
		t.Fatal(err)
	}
	if maxErr > 1e-3*(1+1e-9) {
		t.Fatalf("max error %g exceeds bound", maxErr)
	}
}

func TestFacadeChunkedCampaign(t *testing.T) {
	fields := make([]*Field, 0, 4)
	for _, name := range FieldsOf("CESM")[:4] {
		f, err := GenerateField("CESM", name, 32, 3)
		if err != nil {
			t.Fatal(err)
		}
		fields = append(fields, f)
	}
	run := func(workers int) *CampaignResult {
		res, err := Run(context.Background(), fields, CampaignSpec{
			RelErrorBound:   1e-3,
			Workers:         4,
			GroupParam:      2,
			ChunkMB:         float64(fields[0].RawBytes()) / 3 / 1e6,
			CompressWorkers: workers,
			ChunkEndpoint:   EndpointConfig{},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	solo, wide := run(1), run(4)
	if solo.Chunks <= solo.Files {
		t.Fatalf("chunk fan-out inactive: %d chunks for %d files", solo.Chunks, solo.Files)
	}
	if solo.ReconDigest != wide.ReconDigest {
		t.Fatal("decompressed output differs across endpoint worker counts")
	}
	// The parallelism-aware wall model is exported for tooling.
	if w := PredictParallelCompressSec([]float64{4, 1}, []int{4, 1}, 4, 0, 0); w >= 4 {
		t.Fatalf("chunked wall %g did not divide the wide field", w)
	}
}

// TestFacadeCodecs smoke-tests the codec registry surface: named
// compression, transparent magic dispatch on decode, and the codec-aware
// planner grid.
func TestFacadeCodecs(t *testing.T) {
	names := Codecs()
	has := map[string]bool{}
	for _, n := range names {
		has[n] = true
	}
	if !has["sz3"] || !has["szx"] {
		t.Fatalf("Codecs() = %v, want sz3 and szx registered", names)
	}
	f, err := GenerateField("CESM", "TMQ", 48, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"sz3", "szx"} {
		stream, err := CompressWith(name, f.Data, f.Dims, 1e-2)
		if err != nil {
			t.Fatal(err)
		}
		recon, dims, err := Decompress(stream)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(dims) != len(f.Dims) {
			t.Fatalf("%s: dims %v", name, dims)
		}
		m, err := MaxAbsError(f.Data, recon)
		if err != nil {
			t.Fatal(err)
		}
		if m > 1e-2 {
			t.Errorf("%s: max error %g", name, m)
		}
	}
	if _, err := CompressWith("bogus", f.Data, f.Dims, 1e-2); err == nil {
		t.Error("want error for unknown codec")
	}
	if _, err := LookupCodec("szx"); err != nil {
		t.Error(err)
	}
	cands, err := PlannerCodecCandidates([]string{"sz3", "szx"})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 21 {
		t.Errorf("codec grid has %d candidates, want 21 (14 sz3 + 7 szx)", len(cands))
	}
}
