// Package ocelot is a Go reproduction of "Optimizing Scientific Data
// Transfer on Globus with Error-Bounded Lossy Compression" (ICDCS 2023).
//
// It provides:
//
//   - a pluggable codec registry with two error-bounded lossy
//     compressors: an SZ3-style prediction pipeline (Lorenzo / multilevel
//     interpolation / block regression) and an SZx-style ultra-fast block
//     codec; streams decode transparently by magic;
//   - the paper's compression-quality predictor: feature extraction plus
//     decision-tree models for compression ratio, speed and PSNR;
//   - a parallel compression executor, file-grouping optimizer, and
//     node-waiting sentinel;
//   - calibrated models of the paper's testbed (Anvil/Bebop/Cori machines,
//     Globus-style WAN links) for end-to-end what-if simulation;
//   - synthetic generators for the paper's seven scientific datasets.
//
// This file is the public facade; subsystems live under internal/ and the
// experiment reproductions under internal/experiments (driven by
// cmd/ocelot-bench and the root benchmark suite).
package ocelot

import (
	"context"

	"ocelot/internal/cluster"
	"ocelot/internal/codec"
	"ocelot/internal/core"
	"ocelot/internal/datagen"
	"ocelot/internal/dtree"
	"ocelot/internal/faas"
	"ocelot/internal/journal"
	"ocelot/internal/metrics"
	"ocelot/internal/obs"
	"ocelot/internal/planner"
	"ocelot/internal/quality"
	"ocelot/internal/sentinel"
	"ocelot/internal/sz"
	"ocelot/internal/wan"
)

// --- Compression ---

// Config re-exports the compressor configuration.
type Config = sz.Config

// Predictor selects the decorrelation stage.
type Predictor = sz.Predictor

// Compressor pipeline predictors.
const (
	PredictorLorenzo    = sz.PredictorLorenzo
	PredictorInterp     = sz.PredictorInterp
	PredictorRegression = sz.PredictorRegression
)

// CompressionStats re-exports per-run compressor statistics.
type CompressionStats = sz.Stats

// DefaultConfig returns the SZ3-interp default pipeline at an absolute
// error bound.
func DefaultConfig(absErrorBound float64) Config {
	return sz.DefaultConfig(absErrorBound)
}

// Compress encodes a row-major field (dims[0] slowest) under cfg. Every
// reconstructed value is guaranteed within cfg.ErrorBound of the original.
func Compress(data []float64, dims []int, cfg Config) ([]byte, *CompressionStats, error) {
	return sz.Compress(data, dims, cfg)
}

// Decompress decodes a stream produced by any registered codec (sz3, szx,
// …) or by CompressChunked — the codec registry dispatches on each
// stream's 4-byte magic, and chunked containers are reassembled
// transparently.
func Decompress(stream []byte) (data []float64, dims []int, err error) {
	return codec.Decompress(stream)
}

// --- Codec registry ---

// Codec is one registered error-bounded lossy compressor (see
// internal/codec): sz3 is the high-ratio prediction pipeline, szx the
// SZx-style ultra-fast block codec.
type Codec = codec.Codec

// CodecParams is the codec-neutral compression request (absolute bound
// plus an optional predictor hint).
type CodecParams = codec.Params

// Codecs lists the registered codec names in sorted order.
func Codecs() []string { return codec.Names() }

// LookupCodec resolves a codec by registry name ("" selects sz3); unknown
// names error with the valid list.
func LookupCodec(name string) (Codec, error) { return codec.Lookup(name) }

// CompressWith encodes a field with the named codec under an absolute
// error bound. Decompress reads the result back regardless of codec.
func CompressWith(codecName string, data []float64, dims []int, absErrorBound float64) ([]byte, error) {
	c, err := codec.Lookup(codecName)
	if err != nil {
		return nil, err
	}
	return c.Compress(data, dims, codec.Params{AbsErrorBound: absErrorBound})
}

// --- Chunk-parallel compression ---

// ChunkRange is one block of a chunk-decomposed field: rows [Start, End)
// along the slowest axis.
type ChunkRange = sz.ChunkRange

// PlanChunks splits a field shape into independently compressible chunks
// of roughly targetPoints values each. The plan depends only on the shape
// and target, so campaigns decompose identically run to run.
func PlanChunks(dims []int, targetPoints int) []ChunkRange {
	return sz.PlanChunks(dims, targetPoints)
}

// CompressChunked compresses a field as a chunked container: independent
// ~targetPoints blocks under the field-level error bound, framed for
// bit-exact reassembly. Decompress reads the container transparently.
func CompressChunked(data []float64, dims []int, cfg Config, targetPoints int) ([]byte, *CompressionStats, error) {
	return sz.CompressChunked(data, dims, cfg, targetPoints)
}

// IsChunkedStream reports whether a stream is a chunked container (as
// opposed to a plain Compress stream).
func IsChunkedStream(stream []byte) bool { return sz.IsChunked(stream) }

// --- Quality metrics ---

// PSNR computes the peak signal-to-noise ratio in dB.
func PSNR(original, reconstructed []float64) (float64, error) {
	return metrics.PSNR(original, reconstructed)
}

// MaxAbsError returns the L∞ distance between two fields.
func MaxAbsError(original, reconstructed []float64) (float64, error) {
	return metrics.MaxAbsError(original, reconstructed)
}

// CompressionRatio returns originalBytes / compressedBytes.
func CompressionRatio(originalBytes, compressedBytes int) float64 {
	return metrics.CompressionRatio(originalBytes, compressedBytes)
}

// --- Synthetic datasets ---

// Field is a named synthetic scientific dataset variable.
type Field = datagen.Field

// Applications lists the supported dataset generators.
func Applications() []string { return datagen.Apps() }

// FieldsOf lists an application's field names.
func FieldsOf(app string) []string { return datagen.Fields(app) }

// GenerateField synthesizes one dataset field; shrink divides the paper's
// full dimensions.
func GenerateField(app, field string, shrink int, seed int64) (*Field, error) {
	return datagen.Generate(app, field, shrink, seed)
}

// --- Quality prediction (paper Section VI) ---

// QualityModel bundles the trained ratio/time/PSNR regressors.
type QualityModel = quality.Model

// QualityEstimate is a predicted compression outcome.
type QualityEstimate = quality.Estimate

// TrainQualityModel compresses the given fields across the paper's error
// bound sweep (optionally measuring PSNR) and fits the decision trees.
func TrainQualityModel(fields []*Field, withPSNR bool) (*QualityModel, error) {
	samples, err := quality.Collect(fields, quality.CollectOptions{WithPSNR: withPSNR})
	if err != nil {
		return nil, err
	}
	return quality.Train(samples, dtree.Params{MaxDepth: 14})
}

// EstimateQuality predicts ratio/time/PSNR for compressing data at a
// value-range-relative error bound, from a cheap sampling pass.
func EstimateQuality(m *QualityModel, data []float64, dims []int, relErrorBound float64) (*QualityEstimate, error) {
	return m.EstimateField(data, dims, relErrorBound, 0)
}

// LoadQualityModel deserializes a model saved with (*QualityModel).Save.
func LoadQualityModel(blob []byte) (*QualityModel, error) { return quality.Load(blob) }

// --- End-to-end pipeline ---

// TransferMode selects the strategy (direct / compressed / grouped).
type TransferMode = core.Mode

// Transfer strategies, matching the paper's NP / CP / OP columns.
const (
	TransferDirect     = core.ModeDirect
	TransferCompressed = core.ModeCompressed
	TransferGrouped    = core.ModeGrouped
)

// Pipeline binds source and destination machines with a WAN link.
type Pipeline = core.Pipeline

// TransferPlan configures a simulated transfer.
type TransferPlan = core.Plan

// TransferReport is the simulated outcome.
type TransferReport = core.Report

// FileSet describes a dataset campaign for simulation.
type FileSet = core.FileSet

// Machine models one HPC system.
type Machine = cluster.Machine

// Link models one WAN path.
type Link = wan.Link

// StandardMachines returns the calibrated paper testbed (Anvil, Bebop,
// BebopKNL, Cori).
func StandardMachines() map[string]*Machine { return cluster.Standard() }

// StandardLinks returns the calibrated WAN paths between the testbeds.
func StandardLinks() map[string]*Link { return wan.StandardLinks() }

// UniformFileSet builds a campaign of n equal files with an expected
// compression ratio.
func UniformFileSet(app string, n int, fileBytes int64, ratio float64) *FileSet {
	return core.UniformFileSet(app, n, fileBytes, ratio)
}

// --- Campaigns (unified API) ---

// CampaignSpec is the single description of a campaign — bounds, codec,
// packing, engine, transport, chunk fan-out, and the optional adaptive
// plan pass. It replaces the CampaignOptions / PipelineOptions /
// PlanOptions triple (which survive as deprecated wrappers).
type CampaignSpec = core.CampaignSpec

// CampaignEngine selects how a campaign's stages execute.
type CampaignEngine = core.Engine

// Campaign stage engines.
const (
	// EnginePipelined streams compress → pack → transfer → decompress
	// through bounded channels (the default).
	EnginePipelined = core.EnginePipelined
	// EngineBarrier packs only after every field compressed — the classic
	// RunCampaign semantics.
	EngineBarrier = core.EngineBarrier
	// EngineSequential adds hard barriers between every phase — the
	// pre-pipelining baseline.
	EngineSequential = core.EngineSequential
)

// ParseCampaignEngine resolves an engine by name ("" = pipelined).
func ParseCampaignEngine(name string) (CampaignEngine, error) { return core.ParseEngine(name) }

// Campaign is a re-entrant handle to a submitted campaign: watch it with
// Status, await it with Wait or Done, stop it mid-stage with Cancel.
type Campaign = core.Campaign

// CampaignState is a campaign handle's lifecycle position.
type CampaignState = core.CampaignState

// CampaignStatus is a live snapshot of a submitted campaign.
type CampaignStatus = core.CampaignStatus

// CampaignResult reports a finished campaign run.
type CampaignResult = core.CampaignResult

// BoundAudit tunes the post-decompress pointwise error-bound audit; set
// it on CampaignSpec.BoundAudit. Quarantine converts a bound violation
// from a campaign failure into a degraded-field recovery (the field is
// re-shipped lossless and recorded in CampaignResult.DegradedFields).
type BoundAudit = core.BoundAudit

// Run executes a campaign described by spec and blocks until it finishes.
// It subsumes the historical RunCampaign / RunPipelinedCampaign /
// RunSequentialCampaign / RunPlannedCampaign quartet: pick the engine via
// CampaignSpec.Engine and the plan pass via CampaignSpec.Adaptive.
func Run(ctx context.Context, fields []*Field, spec CampaignSpec) (*CampaignResult, error) {
	return core.Run(ctx, fields, spec)
}

// Submit starts a campaign asynchronously and returns its re-entrant
// handle; hundreds may run concurrently on a shared transport. This is
// the primitive the `ocelot serve` daemon schedules multi-tenant
// campaigns with.
func Submit(ctx context.Context, fields []*Field, spec CampaignSpec) (*Campaign, error) {
	return core.Submit(ctx, fields, spec)
}

// --- Observability: tracing, metrics, profiling ---

// Observability bundles a span tracer and a metrics registry. Set it on
// CampaignSpec.Obs to trace and meter a campaign end to end; a nil
// bundle (the default) keeps every instrumentation site at pointer-check
// cost.
type Observability = obs.Obs

// Tracer records spans. A disabled tracer costs one atomic load per
// StartSpan, so instrumented code paths may leave tracing wired in.
type Tracer = obs.Tracer

// Span is one traced operation; End it exactly once on every return
// path.
type Span = obs.Span

// SpanRecord is one finished span as exported to Chrome trace / NDJSON.
type SpanRecord = obs.SpanRecord

// TraceAttr is a typed span attribute.
type TraceAttr = obs.Attr

// NewTracer returns an enabled span tracer.
func NewTracer() *Tracer { return obs.NewTracer() }

// TraceString builds a string span attribute.
func TraceString(key, value string) TraceAttr { return obs.String(key, value) }

// TraceInt builds an integer span attribute.
func TraceInt(key string, value int64) TraceAttr { return obs.Int(key, value) }

// TraceFloat builds a float span attribute.
func TraceFloat(key string, value float64) TraceAttr { return obs.Float(key, value) }

// MetricsRegistry is an atomic counter/gauge/histogram registry with
// Prometheus text exposition (WritePrometheus) and snapshotting.
type MetricsRegistry = obs.Registry

// MetricLabel is one name=value metric label.
type MetricLabel = obs.Label

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// MetricL builds a metric label.
func MetricL(name, value string) MetricLabel { return obs.L(name, value) }

// --- Fault tolerance: journal, retry, fault injection ---

// RetryPolicy bounds transient-failure retries with exponential backoff;
// set it on CampaignSpec.Retry to let transfer sends and chunk fan-out
// survive link flaps. See also CampaignSpec.FallbackTransports for
// endpoint failover.
type RetryPolicy = sentinel.RetryPolicy

// PermanentError is the classified terminal failure a retried operation
// surfaces once its budget (and every fallback endpoint) is exhausted —
// or immediately, when the underlying error is not transient.
type PermanentError = sentinel.PermanentError

// MarkTransient classifies an error as retryable for RetryPolicy.
func MarkTransient(err error) error { return sentinel.MarkTransient(err) }

// LinkFaults schedules deterministic fault injection on a wan.Link:
// outage windows, bandwidth dips, a seeded per-send error probability,
// and seeded corruption of delivered payloads (CorruptProb/CorruptMode).
// Set it on Link.Faults to exercise campaign retry and
// verify-and-retransmit paths under a simulated hostile WAN.
type LinkFaults = wan.Faults

// CorruptMode selects how LinkFaults mutates a delivered payload.
type CorruptMode = wan.CorruptMode

// Corruption modes for LinkFaults.CorruptMode.
const (
	// CorruptBitFlip flips a single random bit (the default).
	CorruptBitFlip = wan.CorruptBitFlip
	// CorruptTruncate drops a random-length tail.
	CorruptTruncate = wan.CorruptTruncate
	// CorruptGarble overwrites a random span with random bytes.
	CorruptGarble = wan.CorruptGarble
	// CorruptMix picks one of the above per corrupted delivery.
	CorruptMix = wan.CorruptMix
)

// FaultWindow is one scheduled outage in simulated link time.
type FaultWindow = wan.FaultWindow

// BandwidthDip is one scheduled bandwidth reduction in simulated link
// time.
type BandwidthDip = wan.BandwidthDip

// CampaignJournal is a loaded campaign journal manifest: which groups
// were packed, sent, and acked, and the per-field plan the campaign ran
// under. Campaigns write one when CampaignSpec.Journal is set and resume
// from one via CampaignSpec.ResumeFrom.
type CampaignJournal = journal.Manifest

// LoadCampaignJournal reads and folds a journal file written by a
// journaled campaign. Unreadable or torn journals (beyond a torn final
// line, which is tolerated) return journal.ErrCorrupt.
func LoadCampaignJournal(path string) (*CampaignJournal, error) { return journal.Load(path) }

// --- Campaigns (deprecated option structs and entry points) ---

// CampaignOptions configures a real in-process campaign.
//
// Deprecated: build a CampaignSpec and call Run or Submit.
type CampaignOptions = core.CampaignOptions

// RunCampaign compresses fields in parallel, groups the streams, unpacks,
// decompresses and verifies error bounds — the actual data path.
//
// Deprecated: equivalent to Run with Engine: EngineBarrier and
// TransferStreams: 1.
func RunCampaign(ctx context.Context, fields []*Field, opts CampaignOptions) (*CampaignResult, error) {
	return core.RunCampaign(ctx, fields, opts)
}

// --- Pipelined campaign engine ---

// PipelineOptions configures the streaming campaign engine.
//
// Deprecated: build a CampaignSpec and call Run or Submit.
type PipelineOptions = core.PipelineOptions

// StageTiming is one pipeline stage's timing ledger.
type StageTiming = core.StageTiming

// Transport ships packed group archives between endpoints.
type Transport = core.Transport

// NopTransport moves archives instantaneously (in-process campaigns).
type NopTransport = core.NopTransport

// SimulatedWANTransport paces sends at a calibrated wan.Link's rate in
// (scaled) real time, so pipelining overlap shows up in wall time.
type SimulatedWANTransport = core.SimulatedWANTransport

// GridFTPTransport ships archives over the repo's real wire protocol.
type GridFTPTransport = core.GridFTPTransport

// RunPipelinedCampaign is the streaming version of RunCampaign: compress,
// pack, transfer, and decompress/verify run as concurrently-connected
// bounded stages, so a packed group starts its WAN transfer while later
// fields are still compressing. The result carries per-stage timings and
// the measured overlap.
//
// Deprecated: equivalent to Run with Engine: EnginePipelined.
func RunPipelinedCampaign(ctx context.Context, fields []*Field, opts PipelineOptions) (*CampaignResult, error) {
	return core.RunPipelinedCampaign(ctx, fields, opts)
}

// RunSequentialCampaign runs the same campaign with hard barriers between
// phases — the pre-pipelining baseline for overlap benchmarks.
//
// Deprecated: equivalent to Run with Engine: EngineSequential.
func RunSequentialCampaign(ctx context.Context, fields []*Field, opts PipelineOptions) (*CampaignResult, error) {
	return core.RunSequentialCampaign(ctx, fields, opts)
}

// EndpointConfig tunes a FaaS fan-out endpoint: worker count, the
// container-warming model (cold/warm start costs), and queue depth. Set it
// on PipelineOptions.ChunkEndpoint for chunk-parallel campaigns.
type EndpointConfig = faas.EndpointConfig

// PredictParallelCompressSec is the planner's parallelism-aware compression
// wall model: fields with single-worker seconds secs and chunk counts
// chunks spread across workers, each chunk paying dispatchSec on the
// fabric. See planner.ParallelCompressSec.
func PredictParallelCompressSec(secs []float64, chunks []int, workers int, overheadFrac, dispatchSec float64) float64 {
	return planner.ParallelCompressSec(secs, chunks, workers, overheadFrac, dispatchSec)
}

// --- Predictive campaign planner ---

// PlanOptions configures a predictor-driven (adaptive) campaign: the
// planner samples every field, predicts quality across a candidate grid,
// and decides per-field bounds, predictors, and grouping before the
// pipelined engine runs.
//
// Deprecated: build a CampaignSpec with Adaptive: true and call Run or
// Submit.
type PlanOptions = core.PlanOptions

// PlannerOptions tunes the plan pass (candidate grid, quality floor, link
// model, assumed parallelism).
type PlannerOptions = planner.Options

// PlannerCandidate is one (error bound × predictor) configuration the
// planner may assign to a field.
type PlannerCandidate = planner.Candidate

// CampaignPlan is the planner's decision: per-field configurations, the
// grouping knob, and the predicted end-to-end accounting.
type CampaignPlan = planner.Plan

// TrainPlannerModel trains a quality model from a quick compression sweep
// over the given (typically shrunken stand-in) fields, covering every
// predictor and bound in the default candidate grid with PSNR ground
// truth — the train-on-the-fly path of the planner.
func TrainPlannerModel(train []*Field) (*QualityModel, error) {
	return planner.TrainFromSweep(train, nil, dtree.Params{MaxDepth: 14})
}

// TrainPlannerModelCandidates is TrainPlannerModel over an explicit
// candidate grid: every codec in the grid gets its own tree set, so a
// grid from PlannerCodecCandidates yields a model the planner can pick
// codecs with.
func TrainPlannerModelCandidates(train []*Field, candidates []PlannerCandidate) (*QualityModel, error) {
	return planner.TrainFromSweep(train, candidates, dtree.Params{MaxDepth: 14})
}

// PlannerCodecCandidates builds the rel-EB × predictor × codec candidate
// grid over the named registered codecs (e.g. {"sz3", "szx"}), turning
// the planner into a codec-picker: speed-optimized codecs win on fast
// links, high-ratio codecs on slow ones.
func PlannerCodecCandidates(codecNames []string) ([]PlannerCandidate, error) {
	return planner.CodecCandidates(codecNames)
}

// PlanCampaignSpec runs only the plan stage of an adaptive spec and
// returns the decision table an Adaptive Run or Submit would execute.
func PlanCampaignSpec(fields []*Field, spec CampaignSpec) (*CampaignPlan, error) {
	return core.PlanSpec(fields, spec)
}

// PlanCampaign runs only the plan stage and returns the decision table
// RunPlannedCampaign would execute.
//
// Deprecated: use PlanCampaignSpec.
func PlanCampaign(fields []*Field, opts PlanOptions) (*CampaignPlan, error) {
	return core.PlanCampaign(fields, opts)
}

// RunPlannedCampaign closes the paper's predict-then-transfer loop: plan,
// then run the pipelined campaign with the planned per-field
// configurations, reporting predicted vs. actual ratio, seconds, and
// measured PSNR in the CampaignResult.
//
// Deprecated: equivalent to Run with Adaptive: true.
func RunPlannedCampaign(ctx context.Context, fields []*Field, opts PlanOptions) (*CampaignResult, error) {
	return core.RunPlannedCampaign(ctx, fields, opts)
}
