// Package poolsafe enforces the pool discipline PR 5 introduced: every
// pooled acquisition — sync.Pool.Get, the sz arena, huffman table pools —
// must be released on every return path, and a released buffer must never
// alias into a returned value (the next Get would scribble over data the
// caller still holds).
//
// The checker tracks, per function, each acquisition bound to a variable
// and every release of that variable (a Put/Release call, deferred or
// inline, or a call through a closure that wraps the release). A return
// statement after an acquisition with no dominating release is flagged
// unless it transfers the resource (returns it as a direct result) or is
// an error-exit where the acquisition itself failed. A return that
// mentions the resource after its release is flagged as aliasing.
package poolsafe

import (
	"go/ast"
	"go/token"
	"go/types"

	"ocelot/tools/ocelotvet/internal/analysis"
)

// Analyzer is the poolsafe checker.
var Analyzer = &analysis.Analyzer{
	Name: "poolsafe",
	Doc:  "flags pooled resources (sync.Pool.Get, sz arena, huffman tables) not released on every return path, and released buffers aliasing into returned values",
	Run:  run,
}

// AcquirePairs maps fully qualified acquire functions to the method that
// releases their result. sync.Pool.Get/Put is built in; this table names
// the project's domain pools.
var AcquirePairs = map[string]string{
	"ocelot/internal/huffman.BuildTable": "Release",
	"ocelot/internal/sz.getArena":        "release",
}

type acquire struct {
	obj      types.Object   // the variable holding the resource
	pos      token.Pos      // acquisition site
	release  string         // method name that releases it ("" = sync.Pool Put)
	siblings []types.Object // other variables bound by the same assignment (e.g. the error)
}

// relEvent is one release of a tracked resource; deferred releases run
// after the return value is computed, so they only alias when the
// resource itself is returned.
type relEvent struct {
	pos      token.Pos
	deferred bool
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	var acquires []*acquire
	releases := map[types.Object][]relEvent{}
	closureFor := map[types.Object]types.Object{} // closure var -> resource it releases
	nilGuard := map[types.Object][]*ast.IfStmt{}  // resource -> `if res == nil` branches
	errGuard := map[types.Object][]*ast.IfStmt{}  // resource -> branches testing its acquisition error

	// Pass 1: find acquisitions and release-wrapping closures.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if lit, ok := rhs.(*ast.FuncLit); ok && i < len(as.Lhs) {
				if res := releasedInside(pass, lit, acquires); res != nil {
					if obj := defObj(pass, as.Lhs[i]); obj != nil {
						closureFor[obj] = res
					}
				}
				continue
			}
			call := unwrapCall(rhs)
			if call == nil {
				continue
			}
			rel, isAcq := acquireCall(pass, call)
			if !isAcq {
				continue
			}
			// Bind the first lhs as the resource; the rest are siblings
			// (multi-assign from one call, e.g. `t, err := BuildTable(..)`).
			var target types.Object
			var sibs []types.Object
			if len(as.Rhs) == 1 {
				for j, lhs := range as.Lhs {
					o := defObj(pass, lhs)
					if j == 0 {
						target = o
					} else if o != nil {
						sibs = append(sibs, o)
					}
				}
			} else if i < len(as.Lhs) {
				target = defObj(pass, as.Lhs[i])
			}
			if target != nil {
				acquires = append(acquires, &acquire{obj: target, pos: call.Pos(), release: rel, siblings: sibs})
			}
		}
		return true
	})
	if len(acquires) == 0 {
		return
	}

	// Pass 2: releases, nil-guards, and return-path checks.
	var inDefer int
	var scan func(n ast.Node) bool
	scan = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			inDefer++
			ast.Inspect(n.Call, scan)
			inDefer--
			return false
		case *ast.IfStmt:
			for _, a := range acquires {
				if nilCompare(pass, n.Cond, a.obj) {
					nilGuard[a.obj] = append(nilGuard[a.obj], n)
				}
				if mentionsAny(pass, n.Cond, a.siblings) {
					errGuard[a.obj] = append(errGuard[a.obj], n)
				}
			}
		case *ast.CallExpr:
			for _, a := range acquires {
				if isRelease(pass, n, a) {
					releases[a.obj] = append(releases[a.obj], relEvent{pos: n.Pos(), deferred: inDefer > 0})
				}
			}
			// Calling a release-wrapping closure releases the resource.
			if id, ok := n.Fun.(*ast.Ident); ok {
				if res, ok := closureFor[useObj(pass, id)]; ok {
					releases[res] = append(releases[res], relEvent{pos: n.Pos(), deferred: inDefer > 0})
				}
			}
		}
		return true
	}
	ast.Inspect(fd.Body, scan)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, a := range acquires {
			if ret.Pos() < a.pos {
				continue
			}
			released := releasedBefore(releases[a.obj], ret.Pos())
			inline := inlineReleaseBefore(releases[a.obj], ret.Pos())
			mentions := mentionsObj(pass, ret, a.obj)
			switch {
			case transfersClosure(pass, ret, a.obj, closureFor):
				// the caller receives the release func and owns the buffer
				// until it calls it; earlier error-path releases don't count
			case inline && mentions,
				released && transfers(pass, ret, a.obj, closureFor):
				// An inline release before a return that still touches the
				// resource, or a deferred release under a return that hands
				// the resource itself out: either way the caller reads
				// memory the pool is free to reuse.
				pass.Reportf(ret.Pos(), "pooled %s is released before this return but aliases into the returned value (the next Get will overwrite it)", a.obj.Name())
			case released:
				// fine
			case transfers(pass, ret, a.obj, closureFor):
				// responsibility moves to the caller
			case mentionsAny(pass, ret, a.siblings):
				// error-exit from the acquiring assignment: resource invalid
			case insideGuard(errGuard[a.obj], ret):
				// inside `if err != nil { ... }` on the acquisition's own
				// error: the pool never handed out a live resource
			case insideGuard(nilGuard[a.obj], ret):
				// Get returned nothing to release
			default:
				pass.Reportf(ret.Pos(), "pooled %s (acquired at line %d) is not released on this return path (%s)", a.obj.Name(), pass.Fset.Position(a.pos).Line, releaseHint(a))
			}
		}
		return true
	})
}

func releaseHint(a *acquire) string {
	if a.release == "" {
		return "defer the pool's Put"
	}
	return "defer " + a.obj.Name() + "." + a.release + "()"
}

// unwrapCall peels a type assertion off rhs (the `pool.Get().(*T)` idiom)
// and returns the underlying call, if any.
func unwrapCall(rhs ast.Expr) *ast.CallExpr {
	if ta, ok := rhs.(*ast.TypeAssertExpr); ok {
		rhs = ta.X
	}
	call, _ := rhs.(*ast.CallExpr)
	return call
}

// acquireCall reports whether call acquires a pooled resource, and the
// method name that releases it ("" means sync.Pool Put).
func acquireCall(pass *analysis.Pass, call *ast.CallExpr) (release string, ok bool) {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return "", false
	}
	if fn.FullName() == "(*sync.Pool).Get" {
		return "", true
	}
	rel, ok := AcquirePairs[fn.FullName()]
	return rel, ok
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch f := call.Fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// isRelease reports whether call releases a's resource: a Put passing it
// back to a sync.Pool, a defer of either, or the paired release method.
func isRelease(pass *analysis.Pass, call *ast.CallExpr, a *acquire) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if a.release == "" {
		fn := calleeFunc(pass, call)
		if fn == nil || fn.FullName() != "(*sync.Pool).Put" {
			return false
		}
		for _, arg := range call.Args {
			if mentionsObj(pass, arg, a.obj) {
				return true
			}
		}
		return false
	}
	if sel.Sel.Name != a.release {
		return false
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		return useObj(pass, id) == a.obj
	}
	return false
}

// releasedInside reports which tracked resource (if any) lit releases —
// the `release := func() { pool.Put(buf) }` idiom.
func releasedInside(pass *analysis.Pass, lit *ast.FuncLit, acquires []*acquire) types.Object {
	var res types.Object
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, a := range acquires {
			if isRelease(pass, call, a) {
				res = a.obj
			}
		}
		return res == nil
	})
	return res
}

// transfers reports whether ret hands the resource (or a closure that
// releases it) to the caller as a direct result — not merely as an
// argument to a call, which consumes without retaining.
func transfers(pass *analysis.Pass, ret *ast.ReturnStmt, obj types.Object, closureFor map[types.Object]types.Object) bool {
	for _, r := range ret.Results {
		if directResult(pass, r, obj, closureFor) {
			return true
		}
	}
	return false
}

// transfersClosure reports whether ret returns a closure variable that
// releases obj — the `return buf.Bytes(), release, nil` idiom, where the
// caller owns the pooled buffer until it invokes release.
func transfersClosure(pass *analysis.Pass, ret *ast.ReturnStmt, obj types.Object, closureFor map[types.Object]types.Object) bool {
	for _, r := range ret.Results {
		if id, ok := r.(*ast.Ident); ok {
			if res, ok := closureFor[useObj(pass, id)]; ok && res == obj {
				return true
			}
		}
	}
	return false
}

func directResult(pass *analysis.Pass, e ast.Expr, obj types.Object, closureFor map[types.Object]types.Object) bool {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return directResult(pass, e.X, obj, closureFor)
	case *ast.Ident:
		o := useObj(pass, e)
		if o == obj {
			return true
		}
		res, ok := closureFor[o]
		return ok && res == obj
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return directResult(pass, e.X, obj, closureFor)
		}
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if directResult(pass, el, obj, closureFor) {
				return true
			}
		}
	case *ast.SliceExpr:
		return directResult(pass, e.X, obj, closureFor)
	case *ast.SelectorExpr:
		return directResult(pass, e.X, obj, closureFor)
	}
	return false
}

func releasedBefore(events []relEvent, pos token.Pos) bool {
	for _, e := range events {
		if e.pos < pos {
			return true
		}
	}
	return false
}

func inlineReleaseBefore(events []relEvent, pos token.Pos) bool {
	for _, e := range events {
		if e.pos < pos && !e.deferred {
			return true
		}
	}
	return false
}

func mentionsObj(pass *analysis.Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && useObj(pass, id) == obj {
			found = true
		}
		return !found
	})
	return found
}

func mentionsAny(pass *analysis.Pass, n ast.Node, objs []types.Object) bool {
	for _, o := range objs {
		if mentionsObj(pass, n, o) {
			return true
		}
	}
	return false
}

// nilCompare reports whether cond compares obj against nil (the
// "Get may hand back a zero value" guard).
func nilCompare(pass *analysis.Pass, cond ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		xNil, yNil := isNil(pass, be.X), isNil(pass, be.Y)
		if xNil && mentionsObj(pass, be.Y, obj) || yNil && mentionsObj(pass, be.X, obj) {
			found = true
		}
		return !found
	})
	return found
}

func isNil(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilObj := pass.TypesInfo.Uses[id].(*types.Nil)
	return isNilObj || id.Name == "nil"
}

func insideGuard(guards []*ast.IfStmt, ret *ast.ReturnStmt) bool {
	for _, g := range guards {
		if g.Body.Pos() <= ret.Pos() && ret.End() <= g.Body.End() {
			return true
		}
	}
	return false
}

func defObj(pass *analysis.Pass, lhs ast.Expr) types.Object {
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if o := pass.TypesInfo.Defs[id]; o != nil {
		return o
	}
	return pass.TypesInfo.Uses[id]
}

func useObj(pass *analysis.Pass, id *ast.Ident) types.Object {
	return pass.TypesInfo.Uses[id]
}
