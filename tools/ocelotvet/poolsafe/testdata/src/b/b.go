// Package b is poolsafe golden data: sync.Pool discipline plus the
// project's acquire/release pairs (registered by the test as b.acquire).
package b

import (
	"bytes"
	"errors"
	"sync"
)

var bufPool = sync.Pool{New: func() interface{} { return new(bytes.Buffer) }}

// resource mimics a domain pool handle (huffman.Table, sz arena).
type resource struct{ data []byte }

// Release returns the resource to its pool.
func (r *resource) Release() {}

// acquire is registered with poolsafe.AcquirePairs as "b.acquire" →
// "Release" by the golden test.
func acquire() (*resource, error) { return &resource{}, nil }

// --- positive cases ---

// LeakOnReturn drops the pooled buffer on the early return.
func LeakOnReturn(data []byte) int {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if len(data) == 0 {
		return 0 // want `pooled buf .* is not released on this return path`
	}
	buf.Write(data)
	n := buf.Len()
	bufPool.Put(buf)
	return n
}

// LeakViaCall consumes the resource in a call on the return line; that is
// use, not a transfer, so the resource still leaks (the EncodeWithFreqs
// bug).
func LeakViaCall(data []byte) []byte {
	r, err := acquire()
	if err != nil {
		return nil
	}
	return process(data, r) // want `pooled r .* is not released on this return path`
}

func process(data []byte, r *resource) []byte { return data }

// AliasAfterPut returns a view of the buffer it already put back; the
// next Get will overwrite the caller's bytes.
func AliasAfterPut(data []byte) []byte {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	buf.Write(data)
	bufPool.Put(buf)
	return buf.Bytes() // want `released before this return but aliases into the returned value`
}

// --- negative cases ---

// OKDefer releases on every path with one defer.
func OKDefer(data []byte) int {
	buf := bufPool.Get().(*bytes.Buffer)
	defer bufPool.Put(buf)
	buf.Reset()
	if len(data) == 0 {
		return 0
	}
	buf.Write(data)
	return buf.Len()
}

// OKDeferConsume consumes the resource in the return expression under a
// deferred release — the value is computed before the defer runs.
func OKDeferConsume(data []byte) []byte {
	r, err := acquire()
	if err != nil {
		return nil
	}
	defer r.Release()
	return process(data, r)
}

// OKErrorExit returns the acquisition's own error; there is nothing to
// release on that path.
func OKErrorExit() (*resource, error) {
	r, err := acquire()
	if err != nil {
		return nil, err
	}
	return r, nil // transfer: the caller owns r now
}

// OKClosureTransfer hands the caller a release func along with a view of
// the pooled buffer; ownership moves with it (the deflateCompress idiom).
func OKClosureTransfer(data []byte) ([]byte, func(), error) {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	release := func() { bufPool.Put(buf) }
	if len(data) == 0 {
		release()
		return nil, nil, errors.New("empty")
	}
	buf.Write(data)
	return buf.Bytes(), release, nil
}

// OKNilGuard returns inside the "pool handed back nothing" branch; there
// is no live resource to release there.
func OKNilGuard() *bytes.Buffer {
	buf, _ := bufPool.Get().(*bytes.Buffer)
	if buf == nil {
		return nil
	}
	defer bufPool.Put(buf)
	buf.Reset()
	return nil
}
