package poolsafe

import (
	"testing"

	"ocelot/tools/ocelotvet/internal/analysistest"
)

func TestGolden(t *testing.T) {
	// Register the golden package's domain pool the same way the driver's
	// built-in table registers huffman.BuildTable and sz.getArena.
	AcquirePairs["b.acquire"] = "Release"
	defer delete(AcquirePairs, "b.acquire")
	analysistest.Run(t, ".", Analyzer, "b")
}
