package main

import (
	"path/filepath"
	"testing"

	"ocelot/tools/ocelotvet/internal/analysis"
	"ocelot/tools/ocelotvet/internal/load"
)

// TestRepoClean asserts the whole module passes every analyzer — the
// invariant gate itself. Removing any decoder allocation cap, pool
// release, or context plumbing this suite guards turns this test (and CI)
// red.
func TestRepoClean(t *testing.T) {
	moduleDir, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	paths, dirs, err := load.List(moduleDir, "./...")
	if err != nil {
		t.Fatalf("listing module packages: %v", err)
	}
	loader := load.NewLoader()
	for i, path := range paths {
		var run []*analysis.Analyzer
		for _, a := range Analyzers {
			if targets, scoped := Targets[a.Name]; scoped && !targets[path] {
				continue
			}
			run = append(run, a)
		}
		if len(run) == 0 {
			continue
		}
		pkg, err := loader.Dir(dirs[i], path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		for _, a := range run {
			diags, err := analysis.Run(a, loader.Fset, pkg.Files, pkg.Types, pkg.Info)
			if err != nil {
				t.Fatalf("%s on %s: %v", a.Name, path, err)
			}
			for _, d := range diags {
				t.Errorf("%s: %s [%s]", loader.Fset.Position(d.Pos), d.Message, a.Name)
			}
		}
	}
}

// TestAnalyzerMetadata keeps the suite's registration sane: unique names,
// docs present, and every Targets key naming a registered analyzer.
func TestAnalyzerMetadata(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range Analyzers {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing name, doc, or run", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	for name := range Targets {
		if !seen[name] {
			t.Errorf("Targets names unknown analyzer %q", name)
		}
	}
}
