// Package s is spanend golden data: StartSpan results must be End()ed on
// every return path, mirroring the internal/obs tracing discipline.
package s

import "context"

// Span mimics obs.Span; spanend matches the *Span-typed StartSpan result
// by name.
type Span struct{}

// End finishes the span.
func (s *Span) End() {}

// Annotate mimics attaching attributes after the fact.
func (s *Span) Annotate() {}

// Tracer mimics obs.Tracer.
type Tracer struct{}

// StartSpan mimics obs's tracer method: context plus a live span.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return ctx, &Span{}
}

// StartSpan mimics obs's package-level helper.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return ctx, &Span{}
}

var tr = &Tracer{}

// --- positive cases ---

// LeakEarlyReturn ends the span on the happy path only.
func LeakEarlyReturn(ctx context.Context, fail bool) error {
	_, sp := tr.StartSpan(ctx, "work")
	if fail {
		return nil // want `span sp .* is not End\(\)ed on this return path`
	}
	sp.End()
	return nil
}

// NeverEnded starts a span and falls off the end without finishing it.
func NeverEnded(ctx context.Context) {
	_, sp := StartSpan(ctx, "work") // want `span sp is never End\(\)ed in this function`
	sp.Annotate()
}

// LeakInLoop ends only outside the loop body's early return.
func LeakInLoop(ctx context.Context, items []int) int {
	for range items {
		_, sp := tr.StartSpan(ctx, "item")
		if len(items) > 3 {
			return 0 // want `span sp .* is not End\(\)ed on this return path`
		}
		sp.End()
	}
	return len(items)
}

// --- negative cases ---

// OKDefer covers every path with one defer.
func OKDefer(ctx context.Context, fail bool) error {
	ctx, sp := tr.StartSpan(ctx, "work")
	defer sp.End()
	_ = ctx
	if fail {
		return nil
	}
	return nil
}

// OKInlineBothPaths ends inline before each return.
func OKInlineBothPaths(ctx context.Context, fail bool) error {
	_, sp := StartSpan(ctx, "work")
	sp.Annotate()
	sp.End()
	if fail {
		return nil
	}
	return nil
}

// OKTransfer hands the live span to the caller, who owns End now.
func OKTransfer(ctx context.Context) (context.Context, *Span) {
	ctx, sp := tr.StartSpan(ctx, "work")
	return ctx, sp
}

// OKClosure scopes a per-item span to a closure with its own defer; the
// enclosing function's returns owe it nothing.
func OKClosure(ctx context.Context, items []int) error {
	for range items {
		if err := func() error {
			_, sp := tr.StartSpan(ctx, "item")
			defer sp.End()
			return nil
		}(); err != nil {
			return err
		}
	}
	return nil
}

// OKNoSpan never starts a span.
func OKNoSpan(ctx context.Context) error { return nil }
