// Package spanend enforces the tracing discipline internal/obs
// introduced: every span acquired with StartSpan must be ended exactly on
// every return path — a span that is never End()ed silently vanishes from
// the export (its parent's children mis-nest in the Chrome view), and a
// span ended on only some paths skews duration percentiles in a way no
// test catches.
//
// The checker tracks, per function body (closures are checked
// independently), each StartSpan result bound to a *Span variable and
// every End() of that variable, deferred or inline. A return after an
// acquisition with no dominating End is flagged unless it transfers the
// span to the caller (returns it as a direct result). A span with no End
// anywhere in its body and no transferring return is flagged at the
// acquisition site — the fall-off-the-end leak.
package spanend

import (
	"go/ast"
	"go/token"
	"go/types"

	"ocelot/tools/ocelotvet/internal/analysis"
)

// Analyzer is the spanend checker.
var Analyzer = &analysis.Analyzer{
	Name: "spanend",
	Doc:  "flags obs spans (StartSpan results) not End()ed on every return path",
	Run:  run,
}

// spanAcq is one tracked StartSpan acquisition.
type spanAcq struct {
	obj types.Object // the *Span variable
	pos token.Pos    // acquisition site
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				checkBody(pass, fd.Body)
			}
		}
	}
	return nil
}

// checkBody analyzes one function body. Nested function literals are
// recursed into as independent bodies and excluded from the enclosing
// scan: a closure's return paths end its own spans, not its parent's.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	var acquires []*spanAcq
	ends := map[types.Object][]token.Pos{}
	var returns []*ast.ReturnStmt

	var scan func(n ast.Node) bool
	scan = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkBody(pass, n.Body)
			return false
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isStartSpan(pass, call) {
					continue
				}
				for _, lhs := range n.Lhs {
					if obj := defObj(pass, lhs); obj != nil && isSpanPtr(obj.Type()) {
						acquires = append(acquires, &spanAcq{obj: obj, pos: call.Pos()})
					}
				}
			}
		case *ast.CallExpr:
			if obj := endReceiver(pass, n); obj != nil {
				ends[obj] = append(ends[obj], n.Pos())
			}
		case *ast.ReturnStmt:
			returns = append(returns, n)
		}
		return true
	}
	ast.Inspect(body, scan)
	if len(acquires) == 0 {
		return
	}

	for _, a := range acquires {
		transferred := false
		for _, ret := range returns {
			if ret.Pos() >= a.pos && transfers(pass, ret, a.obj) {
				transferred = true
			}
		}
		if len(ends[a.obj]) == 0 {
			if !transferred {
				pass.Reportf(a.pos, "span %s is never End()ed in this function (defer %s.End() after StartSpan)", a.obj.Name(), a.obj.Name())
			}
			continue
		}
		for _, ret := range returns {
			if ret.Pos() < a.pos {
				continue
			}
			if endedBefore(ends[a.obj], ret.Pos()) || transfers(pass, ret, a.obj) {
				continue
			}
			pass.Reportf(ret.Pos(), "span %s (started at line %d) is not End()ed on this return path", a.obj.Name(), pass.Fset.Position(a.pos).Line)
		}
	}
}

// isStartSpan reports whether call invokes a function or method named
// StartSpan — the obs package function, (*Tracer).StartSpan, or
// (*Obs).StartSpan all match by name, which also keeps the golden
// testdata self-contained.
func isStartSpan(pass *analysis.Pass, call *ast.CallExpr) bool {
	var id *ast.Ident
	switch f := call.Fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return false
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn != nil && fn.Name() == "StartSpan"
}

// isSpanPtr reports whether t is a pointer to a named type called Span.
func isSpanPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "Span"
}

// endReceiver returns the tracked variable a `sp.End()` call ends, if
// any.
func endReceiver(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil || !isSpanPtr(obj.Type()) {
		return nil
	}
	return obj
}

// transfers reports whether ret hands the span to the caller as a direct
// result — ownership (and the End obligation) moves with it.
func transfers(pass *analysis.Pass, ret *ast.ReturnStmt, obj types.Object) bool {
	for _, r := range ret.Results {
		if id, ok := unparen(r).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			return true
		}
	}
	return false
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func endedBefore(events []token.Pos, pos token.Pos) bool {
	for _, p := range events {
		if p < pos {
			return true
		}
	}
	return false
}

func defObj(pass *analysis.Pass, lhs ast.Expr) types.Object {
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if o := pass.TypesInfo.Defs[id]; o != nil {
		return o
	}
	return pass.TypesInfo.Uses[id]
}
