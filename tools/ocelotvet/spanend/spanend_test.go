package spanend

import (
	"testing"

	"ocelot/tools/ocelotvet/internal/analysistest"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, ".", Analyzer, "s")
}
