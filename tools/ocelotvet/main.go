// Command ocelotvet is the project's invariant checker: a multichecker
// running five analyzers that encode the bug classes PRs 2–6 paid to
// learn — alloccap (stream-sized allocations need payload bounds),
// poolsafe (pooled resources release on every path), ctxflow (blocking
// orchestration code observes cancellation), boundres (relative error
// bounds resolve only through sz.Config.AbsoluteBound), and spanend
// (obs spans End on every return path).
//
// Usage:
//
//	ocelotvet [-only a,b] [-list] [packages]
//
// Packages default to ./... relative to the current module. Findings
// print as file:line:col: message [analyzer]; any finding exits 1.
// A finding is waived by a line comment `//ocelotvet:ok <analyzer>
// <reason>` on or directly above the flagged line — the reason is the
// paper trail for why the invariant is safe to break there.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ocelot/tools/ocelotvet/alloccap"
	"ocelot/tools/ocelotvet/boundres"
	"ocelot/tools/ocelotvet/ctxflow"
	"ocelot/tools/ocelotvet/internal/analysis"
	"ocelot/tools/ocelotvet/internal/load"
	"ocelot/tools/ocelotvet/poolsafe"
	"ocelot/tools/ocelotvet/spanend"
)

// Analyzers is the ocelotvet suite in reporting order.
var Analyzers = []*analysis.Analyzer{
	alloccap.Analyzer,
	poolsafe.Analyzer,
	ctxflow.Analyzer,
	boundres.Analyzer,
	spanend.Analyzer,
}

// Targets restricts an analyzer to the packages whose invariant it
// encodes; analyzers absent from the map run everywhere. alloccap's
// taint boundary (exported []byte params) only means "attacker stream"
// in the codec packages; ctxflow's blocking rules only bind in the
// orchestration and transport layers.
var Targets = map[string]map[string]bool{
	"alloccap": {
		"ocelot/internal/sz":        true,
		"ocelot/internal/szx":       true,
		"ocelot/internal/huffman":   true,
		"ocelot/internal/lossless":  true,
		"ocelot/internal/codec":     true,
		"ocelot/internal/journal":   true,
		"ocelot/internal/integrity": true,
	},
	"ctxflow": {
		"ocelot/internal/pipeline": true,
		"ocelot/internal/faas":     true,
		"ocelot/internal/core":     true,
		"ocelot/internal/serve":    true,
		"ocelot/internal/gridftp":  true,
	},
}

func main() {
	listFlag := flag.Bool("list", false, "list analyzers and exit")
	onlyFlag := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	if *listFlag {
		for _, a := range Analyzers {
			fmt.Printf("%-10s %s\n", a.Name, firstLine(a.Doc))
		}
		return
	}

	selected := Analyzers
	if *onlyFlag != "" {
		want := map[string]bool{}
		for _, n := range strings.Split(*onlyFlag, ",") {
			want[strings.TrimSpace(n)] = true
		}
		selected = nil
		for _, a := range Analyzers {
			if want[a.Name] {
				selected = append(selected, a)
				delete(want, a.Name)
			}
		}
		for n := range want {
			fmt.Fprintf(os.Stderr, "ocelotvet: unknown analyzer %q\n", n)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ocelotvet: %v\n", err)
		os.Exit(2)
	}
	paths, dirs, err := load.List(wd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ocelotvet: %v\n", err)
		os.Exit(2)
	}

	loader := load.NewLoader()
	findings := 0
	for i, path := range paths {
		var run []*analysis.Analyzer
		for _, a := range selected {
			if t, scoped := Targets[a.Name]; scoped && !t[path] {
				continue
			}
			run = append(run, a)
		}
		if len(run) == 0 {
			continue
		}
		pkg, err := loader.Dir(dirs[i], path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ocelotvet: %v\n", err)
			os.Exit(2)
		}
		for _, a := range run {
			diags, err := analysis.Run(a, loader.Fset, pkg.Files, pkg.Types, pkg.Info)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ocelotvet: %v\n", err)
				os.Exit(2)
			}
			for _, d := range diags {
				fmt.Printf("%s: %s [%s]\n", loader.Fset.Position(d.Pos), d.Message, a.Name)
				findings++
			}
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "ocelotvet: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
