// Package analysistest runs an ocelotvet analyzer over golden packages
// under testdata/src/<pkg> and checks its diagnostics against // want
// comments, mirroring golang.org/x/tools/go/analysis/analysistest.
//
// A line expecting diagnostics carries one comment per expected finding:
//
//	n := make([]byte, sz) // want `derives from stream bytes`
//
// The want payload is a regular expression (backquoted or double-quoted)
// matched against the diagnostic message. Every diagnostic must be matched
// by a want on its line and every want must be matched by a diagnostic;
// any mismatch fails the test with a position-annotated report.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"ocelot/tools/ocelotvet/internal/analysis"
	"ocelot/tools/ocelotvet/internal/load"
)

var wantRe = regexp.MustCompile("// want (`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")")

type want struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads testdata/src/<pkg> for each named package relative to dir
// (the analyzer package's directory), runs the analyzer, and asserts its
// diagnostics match the // want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	l := load.NewLoader()
	for _, name := range pkgs {
		pkgDir := filepath.Join(dir, "testdata", "src", name)
		pkg, err := l.Dir(pkgDir, name)
		if err != nil {
			t.Fatalf("loading %s: %v", pkgDir, err)
		}
		diags, err := analysis.Run(a, l.Fset, pkg.Files, pkg.Types, pkg.Info)
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, name, err)
		}
		wants, err := collectWants(l.Fset, pkg.Files)
		if err != nil {
			t.Fatalf("parsing want comments in %s: %v", pkgDir, err)
		}
		check(t, l.Fset, name, diags, wants)
	}
}

// collectWants extracts want expectations from every comment in files.
func collectWants(fset *token.FileSet, files []*ast.File) ([]*want, error) {
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					lit := m[1]
					var pat string
					if strings.HasPrefix(lit, "`") {
						pat = strings.Trim(lit, "`")
					} else {
						unq, err := strconv.Unquote(lit)
						if err != nil {
							return nil, fmt.Errorf("bad want literal %s: %v", lit, err)
						}
						pat = unq
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("bad want pattern %q: %v", pat, err)
					}
					pos := fset.Position(c.Pos())
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return wants, nil
}

func check(t *testing.T, fset *token.FileSet, pkg string, diags []analysis.Diagnostic, wants []*want) {
	t.Helper()
	var unexpected []string
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if w.matched || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.pattern.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			unexpected = append(unexpected, fmt.Sprintf("%s: unexpected diagnostic: %s", pos, d.Message))
		}
	}
	var missing []string
	for _, w := range wants {
		if !w.matched {
			missing = append(missing, fmt.Sprintf("%s:%d: no diagnostic matching %q", w.file, w.line, w.pattern))
		}
	}
	sort.Strings(unexpected)
	sort.Strings(missing)
	for _, m := range append(unexpected, missing...) {
		t.Errorf("%s: %s", pkg, m)
	}
}
