// Package load parses and type-checks Go packages for ocelotvet using
// only the standard library: source files via go/parser, imports through
// the compiler's source importer (which resolves both std and module-local
// paths offline). Test files are excluded — the analyzers enforce
// invariants on shipped code.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the package's import path (or a display name for testdata).
	Path string
	// Dir is the directory the sources were read from.
	Dir string
	// Files are the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info is the type-checker's fact tables for Files.
	Info *types.Info
}

// Loader type-checks packages against a shared FileSet and import cache,
// so a whole-repo sweep checks each dependency once.
type Loader struct {
	// Fset is the position table shared by every loaded package.
	Fset *token.FileSet

	imp types.Importer
}

// NewLoader builds a loader with a fresh FileSet and source importer.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{Fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// Dir loads the single package in dir, reporting it under the given path.
// Imports must resolve through the source importer (standard library and
// module-local paths both work).
func (l *Loader) Dir(dir, path string) (*Package, error) {
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("load: no Go sources in %s", dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: l.imp}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Files: files, Types: pkg, Info: info}, nil
}

// List expands package patterns (e.g. "./...") into import paths and
// their directories by invoking `go list` in moduleDir.
func List(moduleDir string, patterns ...string) (paths, dirs []string, err error) {
	args := append([]string{"list", "-f", "{{.ImportPath}}\t{{.Dir}}"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleDir
	out, err := cmd.Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return nil, nil, fmt.Errorf("go list %v: %v: %s", patterns, err, ee.Stderr)
		}
		return nil, nil, fmt.Errorf("go list %v: %v", patterns, err)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		parts := strings.SplitN(line, "\t", 2)
		if len(parts) != 2 {
			continue
		}
		paths = append(paths, parts[0])
		dirs = append(dirs, parts[1])
	}
	return paths, dirs, nil
}
