// Package analysis is the minimal, dependency-free core of ocelotvet: the
// Analyzer/Pass/Diagnostic contract the four project analyzers are written
// against.
//
// The API deliberately mirrors golang.org/x/tools/go/analysis so each
// analyzer's Run function could be lifted onto the upstream framework
// unchanged — but this module builds offline with no dependencies beyond
// the standard library, so the vet gate can never be skipped because a
// proxy is unreachable. If x/tools ever lands in the build image, porting
// is mechanical: swap the import and delete this package.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one invariant checker: a name diagnostics are filed
// under, a doc string stating the invariant, and the Run function.
type Analyzer struct {
	// Name is the analyzer's short identifier (e.g. "alloccap"); it is the
	// key used by -only filters and //ocelotvet:ok suppressions.
	Name string
	// Doc states the enforced invariant, first line short.
	Doc string
	// Run inspects one package and reports findings through pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	// Analyzer is the checker this pass runs.
	Analyzer *Analyzer
	// Fset maps token positions for every file in the pass.
	Fset *token.FileSet
	// Files are the package's parsed source files (tests excluded).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's expression/object tables.
	TypesInfo *types.Info
	// Report files one diagnostic.
	Report func(Diagnostic)
}

// Reportf files a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position and a message.
type Diagnostic struct {
	// Pos anchors the finding in p.Fset.
	Pos token.Pos
	// Message states the violation and, where possible, the fix.
	Message string
}

// okDirective is the suppression marker: a line comment of the form
// "//ocelotvet:ok <analyzer> <reason>" on the flagged line (or the line
// above it) silences that analyzer there. The reason is mandatory by
// convention — the comment is the paper trail for why the invariant is
// safe to waive at that one site.
const okDirective = "//ocelotvet:ok"

// suppressed reports whether a diagnostic at pos is waived by an
// okDirective for the analyzer in any of the files.
func suppressed(fset *token.FileSet, files []*ast.File, name string, pos token.Pos) bool {
	p := fset.Position(pos)
	for _, f := range files {
		if fset.Position(f.Pos()).Filename != p.Filename {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, okDirective) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, okDirective)
				fields := strings.Fields(rest)
				if len(fields) == 0 || fields[0] != name {
					continue
				}
				cl := fset.Position(c.Pos()).Line
				if cl == p.Line || cl == p.Line-1 {
					return true
				}
			}
		}
	}
	return false
}

// Run applies one analyzer to a loaded package and returns its surviving
// diagnostics (suppressions applied), sorted by position.
func Run(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Report: func(d Diagnostic) {
			diags = append(diags, d)
		},
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	kept := diags[:0]
	for _, d := range diags {
		if !suppressed(fset, files, a.Name, d.Pos) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Pos < kept[j].Pos })
	return kept, nil
}

// Preorder walks every file in the pass in depth-first order, invoking fn
// on each node (the ast.Inspect contract with a single callback).
func Preorder(pass *Pass, fn func(ast.Node)) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n != nil {
				fn(n)
			}
			return true
		})
	}
}
