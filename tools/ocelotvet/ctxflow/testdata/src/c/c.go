// Package c is ctxflow golden data: blocking operations with and without
// cancellation, HTTP entry points, and root-context minting.
package c

import (
	"context"
	"net/http"
	"time"
)

// SleepBlocks parks a goroutine no cancellation can reach.
func SleepBlocks() {
	time.Sleep(time.Second) // want `time.Sleep ignores cancellation`
}

// BareSend blocks forever if the receiver is gone.
func BareSend(ch chan int) {
	ch <- 1 // want `bare channel send blocks without observing a context`
}

// BareRecv blocks forever if the sender is gone.
func BareRecv(ch chan int) int {
	return <-ch // want `bare channel receive blocks without observing a context`
}

// DeafSelect has no escape hatch at all.
func DeafSelect(a, b chan int) int {
	select { // want `select has neither a default nor a cancellation case`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// NoCtxHTTP uses the package-level client with no context.
func NoCtxHTTP() {
	http.Get("http://example.invalid") // want `sends a request with no context`
}

// NoCtxRequest builds a context-free request.
func NoCtxRequest() {
	http.NewRequest("GET", "http://example.invalid", nil) // want `sends a request with no context`
}

// NoCtxClient calls a convenience method that cannot carry a context.
func NoCtxClient(c *http.Client) {
	c.Get("http://example.invalid") // want `sends a request with no context`
}

// MintsRoot creates a root context in library code.
func MintsRoot() context.Context {
	return context.Background() // want `mints a root context in library code`
}

// MintsTODO is the same failure wearing a different name.
func MintsTODO() context.Context {
	return context.TODO() // want `mints a root context in library code`
}

// --- negative cases ---

// OKCtxRecv waits on the context itself.
func OKCtxRecv(ctx context.Context) {
	<-ctx.Done()
}

// OKDoneChan waits on a close-on-shutdown signal channel.
func OKDoneChan(done chan struct{}) {
	<-done
}

// OKSelectCtx blocks interruptibly.
func OKSelectCtx(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

// OKSelectDefault never blocks at all.
func OKSelectDefault(ch chan int) int {
	select {
	case v := <-ch:
		return v
	default:
		return 0
	}
}

// OKClientDo carries the context inside the request.
func OKClientDo(ctx context.Context, c *http.Client) error {
	req, err := http.NewRequestWithContext(ctx, "GET", "http://example.invalid", nil)
	if err != nil {
		return err
	}
	resp, err := c.Do(req)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// OKSuppressed is a reviewed waiver for a provably non-blocking send.
func OKSuppressed(errs chan error) {
	errs <- nil //ocelotvet:ok ctxflow buffered one-slot channel in golden data
}
