// Command cmain is ctxflow golden data for the one place a root context
// is legitimate: package main.
package main

import "context"

func main() {
	run(context.Background())
}

func run(ctx context.Context) { _ = ctx }
