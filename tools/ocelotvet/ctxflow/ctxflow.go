// Package ctxflow enforces the cancellation discipline PR 6's re-entrant
// serve daemon depends on: blocking operations in the orchestration
// packages must observe a context, and new code must not mint root
// contexts outside package main.
//
// Flagged:
//
//   - time.Sleep — unconditionally; a sleeping goroutine outlives its
//     campaign's cancellation. Use a select on time.After and ctx.Done().
//   - Bare channel sends/receives outside a select — unless the channel
//     is a cancellation signal itself (a Done() call or a done/stop/quit
//     -named channel) whose close is the event being awaited.
//   - Selects with neither a default nor a cancellation case.
//   - Context-free HTTP entry points (http.Get/Post/..., client.Get,
//     http.NewRequest) — requests must carry the campaign's context.
//   - context.Background()/context.TODO() outside package main; library
//     code receives its context from the caller.
package ctxflow

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"ocelot/tools/ocelotvet/internal/analysis"
)

// Analyzer is the ctxflow checker.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "flags blocking operations (sleeps, bare channel ops, context-free HTTP calls) that ignore cancellation, and root contexts minted outside main",
	Run:  run,
}

// doneChanRe matches channel names that are themselves cancellation
// signals; blocking on their close is how cancellation is observed.
var doneChanRe = regexp.MustCompile(`(?i)(done|stop|stopped|quit|closed|abort)`)

// httpNoCtx lists net/http package-level entry points that cannot carry a
// context, and *http.Client methods with the same flaw.
var httpNoCtx = map[string]bool{
	"net/http.Get": true, "net/http.Post": true, "net/http.PostForm": true,
	"net/http.Head": true, "net/http.NewRequest": true,
	"(*net/http.Client).Get": true, "(*net/http.Client).Post": true,
	"(*net/http.Client).PostForm": true, "(*net/http.Client).Head": true,
}

func run(pass *analysis.Pass) error {
	isMain := pass.Pkg != nil && pass.Pkg.Name() == "main"
	for _, f := range pass.Files {
		checkFile(pass, f, isMain)
	}
	return nil
}

func checkFile(pass *analysis.Pass, f *ast.File, isMain bool) {
	var selectDepth int
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectStmt:
			if !selectObservesCancel(pass, n) {
				pass.Reportf(n.Pos(), "select has neither a default nor a cancellation case (add a ctx.Done() arm so this block is interruptible)")
			}
			selectDepth++
			for _, clause := range n.Body.List {
				ast.Inspect(clause, walk)
			}
			selectDepth--
			return false
		case *ast.SendStmt:
			if selectDepth == 0 && !cancelChan(pass, n.Chan) {
				pass.Reportf(n.Pos(), "bare channel send blocks without observing a context (wrap in a select with a ctx.Done() case)")
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" && selectDepth == 0 && !cancelChan(pass, n.X) {
				pass.Reportf(n.Pos(), "bare channel receive blocks without observing a context (wrap in a select with a ctx.Done() case)")
			}
		case *ast.CallExpr:
			checkCall(pass, n, isMain)
		}
		return true
	}
	ast.Inspect(f, walk)
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, isMain bool) {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return
	}
	switch full := fullName(fn); {
	case full == "time.Sleep":
		pass.Reportf(call.Pos(), "time.Sleep ignores cancellation (select on time.After and ctx.Done() instead)")
	case full == "context.Background" || full == "context.TODO":
		if !isMain {
			pass.Reportf(call.Pos(), "%s mints a root context in library code (accept a context.Context from the caller)", full)
		}
	case httpNoCtx[full]:
		pass.Reportf(call.Pos(), "%s sends a request with no context (build it with http.NewRequestWithContext and use Do)", full)
	}
}

// selectObservesCancel reports whether sel can make progress under
// cancellation: a default case, or a comm on a cancellation channel.
func selectObservesCancel(pass *analysis.Pass, sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil { // default:
			return true
		}
		switch comm := cc.Comm.(type) {
		case *ast.ExprStmt:
			if u, ok := comm.X.(*ast.UnaryExpr); ok && cancelChan(pass, u.X) {
				return true
			}
		case *ast.AssignStmt:
			for _, r := range comm.Rhs {
				if u, ok := r.(*ast.UnaryExpr); ok && cancelChan(pass, u.X) {
					return true
				}
			}
		}
	}
	return false
}

// cancelChan reports whether ch is itself a cancellation signal: a call
// to a method named Done (ctx.Done(), handle.Done()) or a channel whose
// name marks it as a close-on-shutdown signal.
func cancelChan(pass *analysis.Pass, ch ast.Expr) bool {
	switch ch := ch.(type) {
	case *ast.ParenExpr:
		return cancelChan(pass, ch.X)
	case *ast.CallExpr:
		return calleeName(ch) == "Done"
	case *ast.Ident:
		return doneChanRe.MatchString(ch.Name)
	case *ast.SelectorExpr:
		if doneChanRe.MatchString(ch.Sel.Name) {
			return true
		}
		return cancelChan(pass, ch.X)
	}
	return false
}

func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch f := call.Fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// fullName renders fn like types.Func.FullName but normalizes pointer
// receivers so table lookups are stable.
func fullName(fn *types.Func) string {
	full := fn.FullName()
	// FullName already yields "(*net/http.Client).Get" / "time.Sleep".
	return strings.TrimSpace(full)
}
