// Package d is boundres golden data: relative→absolute bound arithmetic
// in every spelling the repo has used, plus the one sanctioned site.
package d

// Config mimics sz.Config for the golden cases.
type Config struct {
	ErrorBound float64
	Mode       int
}

// BadPlain is the PR 2 shape verbatim.
func BadPlain(eb, rng float64) float64 {
	return eb * rng // want `ad-hoc relative-to-absolute bound arithmetic`
}

// BadNamed spells the operands the way the planner code did.
func BadNamed(relEB, valueRange float64) float64 {
	return relEB * valueRange // want `ad-hoc relative-to-absolute bound arithmetic`
}

// BadReversed has the range on the left.
func BadReversed(rng, eb float64) float64 {
	return rng * eb // want `ad-hoc relative-to-absolute bound arithmetic`
}

// BadField resolves from a config field instead of a local.
func BadField(c Config, rng float64) float64 {
	return c.ErrorBound * rng // want `ad-hoc relative-to-absolute bound arithmetic`
}

// AbsoluteBound is the sanctioned resolver: the same arithmetic here is
// the single source of truth, not a finding.
func (c Config) AbsoluteBound(data []float64) float64 {
	rng := 0.0
	if len(data) > 0 {
		lo, hi := data[0], data[0]
		for _, v := range data {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		rng = hi - lo
	}
	if rng <= 0 {
		rng = 1
	}
	return c.ErrorBound * rng
}

// OKUnrelated multiplies things that are not a bound and a range.
func OKUnrelated(scale, weight float64) float64 {
	return scale * weight
}

// OKDouble scales a bound by a constant, which is not range resolution.
func OKDouble(eb float64) float64 {
	return eb * 2
}
