// Package boundres enforces the PR 2 lesson: relative error bounds are
// resolved to absolute ones in exactly one place, sz.Config.AbsoluteBound.
// Ad-hoc `eb * valueRange` arithmetic scattered through callers is how the
// original divergence bug happened — two resolutions disagreeing on the
// degenerate-range fallback (NaN/Inf/zero-range fields) silently produce
// different quantizers for "the same" bound.
//
// The checker flags multiplications where one operand is named like a
// relative error bound (eb, relEB, ErrorBound, ...) and the other like a
// value range (rng, valueRange, ...), anywhere outside the AbsoluteBound
// resolver itself.
package boundres

import (
	"go/ast"
	"go/token"
	"regexp"

	"ocelot/tools/ocelotvet/internal/analysis"
)

// Analyzer is the boundres checker.
var Analyzer = &analysis.Analyzer{
	Name: "boundres",
	Doc:  "flags ad-hoc relative-to-absolute error-bound arithmetic outside sz.Config.AbsoluteBound (the PR 2 divergence class)",
	Run:  run,
}

// ebRe matches operand names that denote a relative error bound.
var ebRe = regexp.MustCompile(`(?i)^(rel)?(eb|errbound|errorbound)$`)

// rngRe matches operand names that denote a value range.
var rngRe = regexp.MustCompile(`(?i)^(rng|range|valuerange|valrange|vrange|datarange)$`)

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// The resolver itself is the one legitimate site.
			if fd.Name.Name == "AbsoluteBound" {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || be.Op != token.MUL {
					return true
				}
				xn, yn := operandName(be.X), operandName(be.Y)
				if (ebRe.MatchString(xn) && rngRe.MatchString(yn)) ||
					(ebRe.MatchString(yn) && rngRe.MatchString(xn)) {
					pass.Reportf(be.Pos(), "ad-hoc relative-to-absolute bound arithmetic (%s * %s); resolve through sz.Config.AbsoluteBound so degenerate ranges use one fallback", xn, yn)
				}
				return true
			})
		}
	}
	return nil
}

// operandName extracts the final identifier of an operand: the ident
// itself, the selected field (cfg.ErrorBound), or through parens and
// conversions.
func operandName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.ParenExpr:
		return operandName(e.X)
	case *ast.CallExpr:
		if len(e.Args) == 1 {
			// conversions like float64(rng)
			return operandName(e.Args[0])
		}
	}
	return ""
}
