// Package alloccap flags allocations whose size flows from stream-parsed
// integers without a dominating bounds check against the payload — the
// exact class of the four PR 4 decoder crashers, where a crafted stream
// header demanded terabyte allocations before a single body byte decoded.
//
// Taint model (intra-procedural, with package-local call propagation):
//
//   - Sources: []byte parameters of exported functions (the attacker
//     boundary), values read out of tainted byte slices (indexing,
//     encoding/binary reads, any call fed a tainted argument), and
//     parameters of unexported functions that some call site feeds a
//     tainted, unchecked argument.
//   - Propagation: assignment and conversion alias the taint; arithmetic
//     derives a new tainted value carrying its operands' roots.
//   - Sanitizers: an if-condition comparing the tainted value against the
//     input's length (a len/cap expression or a *.Len()-style call) or
//     against a constant ≤ 1<<28. Larger constants (the 1<<36/1<<40
//     overflow guards) deliberately do not sanitize: they stop integer
//     wrap, not memory exhaustion.
//   - Sinks: make() size/capacity arguments, and append loops whose bound
//     is tainted (these must have some same-root check, since decoders
//     commonly bound a derived block count rather than the raw total).
//
// A finding means: a crafted stream can pick this allocation's size.
// Either bound it against the payload that must back it, or cap the
// pre-allocation and let append-growth pay for dishonest headers.
package alloccap

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"ocelot/tools/ocelotvet/internal/analysis"
)

// maxConstCap is the largest constant bound that counts as a sanitizer:
// 1<<28 elements is the repo's own ceiling for header-trusted
// pre-allocation (SplitChunked's chunk count). Guards against larger
// constants prevent overflow, not out-of-memory, so they do not sanitize.
const maxConstCap = 1 << 28

// Analyzer is the alloccap checker.
var Analyzer = &analysis.Analyzer{
	Name: "alloccap",
	Doc:  "flags allocations sized by stream-parsed integers with no dominating payload-length bound (the PR 4 decoder-crasher class)",
	Run:  run,
}

// group is one taint equivalence class: aliases share a group; arithmetic
// derives fresh groups that keep their operands' roots.
type group struct {
	roots     map[int]bool
	sanitized []token.Pos // positions of qualifying checks mentioning this group
}

func (g *group) sanitizedBefore(pos token.Pos) bool {
	for _, p := range g.sanitized {
		if p < pos {
			return true
		}
	}
	return false
}

type funcState struct {
	pass    *analysis.Pass
	a       *analyzer
	tainted map[types.Object]*group
	closure map[types.Object]bool // local vars holding FuncLits with tainted returns
	// rootChecked maps taint roots to check positions; the append-loop
	// rule accepts a bound on any same-root derivative.
	rootChecked map[int][]token.Pos
	nextRoot    *int
}

type analyzer struct {
	pass  *analysis.Pass
	decls map[*types.Func]*ast.FuncDecl
	// paramTaint accumulates, per local function, the parameter objects
	// call sites feed tainted data; analysis iterates until it stops
	// growing.
	paramTaint map[*types.Func]map[int]bool
	reported   map[token.Pos]bool
}

func run(pass *analysis.Pass) error {
	a := &analyzer{
		pass:       pass,
		decls:      make(map[*types.Func]*ast.FuncDecl),
		paramTaint: make(map[*types.Func]map[int]bool),
		reported:   make(map[token.Pos]bool),
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					a.decls[obj] = fd
				}
			}
		}
	}

	// Iterate to a fixpoint over call-site parameter taint: each round
	// analyzes every function with its currently known tainted params;
	// rounds are bounded by the total parameter count.
	for changed, round := true, 0; changed && round < 10; round++ {
		changed = false
		for fn, fd := range a.decls {
			if a.analyzeFunc(fn, fd) {
				changed = true
			}
		}
	}
	// Final reporting pass with the stable param-taint assignment.
	a.reported = make(map[token.Pos]bool)
	for fn, fd := range a.decls {
		a.analyzeFuncReporting(fn, fd)
	}
	return nil
}

// byteSliceLike reports whether t is []byte, [][]byte, etc. — raw stream
// data at an API boundary.
func byteSliceLike(t types.Type) bool {
	for {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		if b, ok := s.Elem().Underlying().(*types.Basic); ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8) {
			return true
		}
		t = s.Elem()
	}
}

func (a *analyzer) analyzeFunc(fn *types.Func, fd *ast.FuncDecl) bool {
	st := a.newState(fn)
	return st.walk(fd.Body, false)
}

func (a *analyzer) analyzeFuncReporting(fn *types.Func, fd *ast.FuncDecl) {
	st := a.newState(fn)
	st.walk(fd.Body, true)
}

func (a *analyzer) newState(fn *types.Func) *funcState {
	root := 0
	st := &funcState{
		pass:        a.pass,
		a:           a,
		tainted:     make(map[types.Object]*group),
		closure:     make(map[types.Object]bool),
		rootChecked: make(map[int][]token.Pos),
		nextRoot:    &root,
	}
	a.seedTaintInto(fn, st)
	return st
}

func (a *analyzer) seedTaintInto(fn *types.Func, st *funcState) {
	sig := fn.Type().(*types.Signature)
	params := sig.Params()
	extra := a.paramTaint[fn]
	for i := 0; i < params.Len(); i++ {
		p := params.At(i)
		if (fn.Exported() && byteSliceLike(p.Type())) || extra[i] {
			st.taint(p, st.freshGroup())
		}
	}
}

func (st *funcState) freshGroup() *group {
	*st.nextRoot++
	return &group{roots: map[int]bool{*st.nextRoot: true}}
}

func (st *funcState) derivedGroup(parents ...*group) *group {
	g := &group{roots: map[int]bool{}}
	for _, p := range parents {
		if p == nil {
			continue
		}
		for r := range p.roots {
			g.roots[r] = true
		}
	}
	if len(g.roots) == 0 {
		*st.nextRoot++
		g.roots[*st.nextRoot] = true
	}
	return g
}

func (st *funcState) taint(obj types.Object, g *group) {
	if obj != nil {
		st.tainted[obj] = g
	}
}

// walk performs two source-order passes over body (the second catches
// loop-carried taint), flagging sinks on the final pass when report is
// true. It returns whether call-site propagation discovered new tainted
// params anywhere in the package.
func (st *funcState) walk(body *ast.BlockStmt, report bool) bool {
	grew := false
	for pass := 0; pass < 2; pass++ {
		final := pass == 1
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				st.handleAssign(n)
			case *ast.RangeStmt:
				// Ranging over a tainted container taints its element (and
				// key, for maps keyed by parsed values).
				if g := st.exprTaint(n.X); g != nil {
					for _, v := range []ast.Expr{n.Key, n.Value} {
						if v != nil {
							if obj := st.lhsObj(v); obj != nil {
								st.taint(obj, st.derivedGroup(g))
							}
						}
					}
				}
			case *ast.IfStmt:
				st.handleCond(n.Cond, n.End())
			case *ast.ForStmt:
				if n.Cond != nil && final && report {
					st.checkAppendLoop(n)
				}
			case *ast.CallExpr:
				if final {
					if st.propagateCall(n) {
						grew = true
					}
					if report {
						st.checkMake(n)
					}
				}
			}
			return true
		})
	}
	return grew
}

// handleAssign threads taint through assignments, including FuncLit
// bindings (closures whose returns are tainted act as sources at their
// call sites, e.g. the readU64/readF64 helpers in stream parsers).
func (st *funcState) handleAssign(n *ast.AssignStmt) {
	if len(n.Lhs) == len(n.Rhs) {
		for i, lhs := range n.Lhs {
			rhs := n.Rhs[i]
			if lit, ok := rhs.(*ast.FuncLit); ok {
				if obj := st.lhsObj(lhs); obj != nil && st.funcLitTainted(lit) {
					st.closure[obj] = true
				}
				continue
			}
			g := st.exprTaint(rhs)
			if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
				// Compound ops (+=, *=): lhs derives from both sides.
				g = st.combine(g, st.exprTaint(lhs))
			}
			if obj := st.lhsObj(lhs); obj != nil {
				if g != nil {
					st.taint(obj, g)
				}
			}
		}
		return
	}
	// Multi-value: x, y := call() — every lhs shares the call's taint.
	if len(n.Rhs) == 1 {
		g := st.exprTaint(n.Rhs[0])
		if g == nil {
			return
		}
		for _, lhs := range n.Lhs {
			if obj := st.lhsObj(lhs); obj != nil {
				st.taint(obj, st.derivedGroup(g))
			}
		}
	}
}

func (st *funcState) combine(a, b *group) *group {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return st.derivedGroup(a, b)
}

func (st *funcState) lhsObj(lhs ast.Expr) types.Object {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		if obj := st.pass.TypesInfo.Defs[lhs]; obj != nil {
			return obj
		}
		return st.pass.TypesInfo.Uses[lhs]
	}
	return nil
}

// funcLitTainted reports whether any return expression of lit is tainted
// under the current (captured) environment.
func (st *funcState) funcLitTainted(lit *ast.FuncLit) bool {
	tainted := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if ret, ok := n.(*ast.ReturnStmt); ok {
			for _, e := range ret.Results {
				if st.exprTaint(e) != nil {
					tainted = true
				}
			}
		}
		return !tainted
	})
	return tainted
}

// exprTaint returns the taint group of e, or nil. Alias forms return the
// operand's group unchanged; derivations return a fresh group with the
// operands' roots.
func (st *funcState) exprTaint(e ast.Expr) *group {
	switch e := e.(type) {
	case *ast.Ident:
		if obj := st.pass.TypesInfo.Uses[e]; obj != nil {
			return st.tainted[obj]
		}
	case *ast.ParenExpr:
		return st.exprTaint(e.X)
	case *ast.UnaryExpr:
		return st.exprTaint(e.X)
	case *ast.StarExpr:
		return st.exprTaint(e.X)
	case *ast.TypeAssertExpr:
		return st.exprTaint(e.X)
	case *ast.SliceExpr:
		return st.exprTaint(e.X)
	case *ast.SelectorExpr:
		return st.exprTaint(e.X)
	case *ast.IndexExpr:
		if g := st.exprTaint(e.X); g != nil {
			return st.derivedGroup(g)
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ,
			token.LAND, token.LOR:
			return nil
		}
		gx, gy := st.exprTaint(e.X), st.exprTaint(e.Y)
		if gx == nil && gy == nil {
			return nil
		}
		return st.derivedGroup(gx, gy)
	case *ast.CompositeLit:
		var parents []*group
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if g := st.exprTaint(el); g != nil {
				parents = append(parents, g)
			}
		}
		if len(parents) > 0 {
			return st.derivedGroup(parents...)
		}
	case *ast.CallExpr:
		return st.callTaint(e)
	}
	return nil
}

func (st *funcState) callTaint(call *ast.CallExpr) *group {
	// Conversions alias their operand.
	if tv, ok := st.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return st.exprTaint(call.Args[0])
	}
	// len/cap are memory truth: never tainted.
	if name := calleeName(call); name == "len" || name == "cap" {
		if isBuiltin(st.pass.TypesInfo, call.Fun) {
			return nil
		}
	}
	// Calls to tainted closures are sources.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if obj := st.pass.TypesInfo.Uses[id]; obj != nil && st.closure[obj] {
			return st.freshGroup()
		}
	}
	// Any call fed tainted data returns tainted data: binary.*Endian
	// reads, bitstream readers, package-local parsers.
	var parents []*group
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if g := st.exprTaint(sel.X); g != nil {
			parents = append(parents, g)
		}
	}
	for _, arg := range call.Args {
		if g := st.exprTaint(arg); g != nil {
			parents = append(parents, g)
		}
	}
	if len(parents) > 0 {
		return st.derivedGroup(parents...)
	}
	return nil
}

func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

func isBuiltin(info *types.Info, fun ast.Expr) bool {
	id, ok := fun.(*ast.Ident)
	if !ok {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// handleCond records sanitizers: comparisons whose one side mentions a
// tainted value (outside len/cap) and whose other side is a qualifying
// bound — a len/cap/.Len()-style expression or a constant ≤ maxConstCap.
//
// Branch direction matters: in `if tainted > bound { ... }` the if-body
// is exactly the branch where the bound is EXCEEDED (the reject — or, in
// `if cap(buf) < n { buf = make(..., n) }`, the allocation!), so a check
// with the tainted value on the greater side only sanitizes code after
// the whole if statement (after). Equality checks and checks with the
// tainted value on the lesser side sanitize from the condition onward.
func (st *funcState) handleCond(cond ast.Expr, after token.Pos) {
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.LEQ:
			st.recordCheck(be.X, be.Y, be.Pos()) // checked < bound: holds in-branch
			st.recordCheck(be.Y, be.X, after)    // bound < checked: holds only after
		case token.GTR, token.GEQ:
			st.recordCheck(be.X, be.Y, after)
			st.recordCheck(be.Y, be.X, be.Pos())
		case token.EQL, token.NEQ:
			st.recordCheck(be.X, be.Y, be.Pos())
			st.recordCheck(be.Y, be.X, be.Pos())
		}
		return true
	})
}

func (st *funcState) recordCheck(checked, bound ast.Expr, pos token.Pos) {
	if !qualifiesAsBound(st.pass.TypesInfo, bound) {
		return
	}
	for _, g := range st.taintedMentions(checked) {
		g.sanitized = append(g.sanitized, pos)
		for r := range g.roots {
			st.rootChecked[r] = append(st.rootChecked[r], pos)
		}
	}
}

// taintedMentions collects the taint groups of identifiers mentioned in e,
// skipping subtrees inside len/cap calls (len(stream) measures memory, it
// does not check the tainted value).
func (st *funcState) taintedMentions(e ast.Expr) []*group {
	var out []*group
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if name := calleeName(call); (name == "len" || name == "cap") && isBuiltin(st.pass.TypesInfo, call.Fun) {
				return false
			}
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := st.pass.TypesInfo.Uses[id]; obj != nil {
				if g := st.tainted[obj]; g != nil {
					out = append(out, g)
				}
			}
		}
		return true
	})
	return out
}

// qualifiesAsBound reports whether bound can actually limit memory: it
// references the input's length (len/cap or a .Len()-style method) or is
// a constant small enough to be an honest cap.
func qualifiesAsBound(info *types.Info, bound ast.Expr) bool {
	if tv, ok := info.Types[bound]; ok && tv.Value != nil {
		if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
			return v >= 0 && v <= maxConstCap
		}
		return false
	}
	found := false
	ast.Inspect(bound, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch name := calleeName(call); name {
		case "len", "cap":
			if isBuiltin(info, call.Fun) {
				found = true
			}
		case "Len", "Size", "Count":
			found = true
		}
		return !found
	})
	return found
}

// checkMake flags make() calls whose size or capacity argument is tainted
// and unsanitized at the allocation.
func (st *funcState) checkMake(call *ast.CallExpr) {
	if calleeName(call) != "make" || !isBuiltin(st.pass.TypesInfo, call.Fun) {
		return
	}
	for _, arg := range call.Args[1:] {
		g := st.exprTaint(arg)
		if g == nil || g.sanitizedBefore(call.Pos()) {
			continue
		}
		if st.rootsCheckedBefore(g, call.Pos()) && st.onlyDerived(arg) {
			continue
		}
		if !st.a.reported[call.Pos()] {
			st.a.reported[call.Pos()] = true
			st.pass.Reportf(call.Pos(), "make size %s derives from stream-parsed bytes with no dominating bound against the payload length (cap it or validate against len of the input)", render(arg))
		}
	}
}

// onlyDerived reports whether arg is an arithmetic derivation rather than
// a direct tainted variable — direct variables demand their own check.
func (st *funcState) onlyDerived(arg ast.Expr) bool {
	switch arg.(type) {
	case *ast.Ident, *ast.SelectorExpr:
		return false
	}
	return true
}

// checkAppendLoop flags for-loops appending under a tainted bound whose
// taint family was never checked: decoders typically validate a derived
// block count, so any same-root check before the loop qualifies.
func (st *funcState) checkAppendLoop(n *ast.ForStmt) {
	be, ok := n.Cond.(*ast.BinaryExpr)
	if !ok {
		return
	}
	// Only the upper bound of the loop matters: `i < len(data)` iterates a
	// tainted cursor under an honest bound, while `len(out) < n` grows
	// memory until a stream-parsed count is satisfied.
	var upper ast.Expr
	switch be.Op {
	case token.LSS, token.LEQ:
		upper = be.Y
	case token.GTR, token.GEQ:
		upper = be.X
	default:
		return
	}
	var g *group
	for _, m := range st.taintedMentions(upper) {
		g = m
	}
	if g == nil || g.sanitizedBefore(n.Pos()) || st.rootsCheckedBefore(g, n.Pos()) {
		return
	}
	hasAppend := false
	ast.Inspect(n.Body, func(inner ast.Node) bool {
		if call, ok := inner.(*ast.CallExpr); ok && calleeName(call) == "append" && isBuiltin(st.pass.TypesInfo, call.Fun) {
			hasAppend = true
		}
		return !hasAppend
	})
	if !hasAppend {
		return
	}
	if !st.a.reported[n.Pos()] {
		st.a.reported[n.Pos()] = true
		st.pass.Reportf(n.Pos(), "append loop bounded by a stream-parsed count with no bound against the payload length (validate the count against the bytes that must back it)")
	}
}

func (st *funcState) rootsCheckedBefore(g *group, pos token.Pos) bool {
	for r := range g.roots {
		for _, p := range st.rootChecked[r] {
			if p < pos {
				return true
			}
		}
	}
	return false
}

// propagateCall marks callee parameters tainted when a call site passes
// tainted, unchecked data into a package-local function. Returns whether
// the package-wide param-taint assignment grew.
func (st *funcState) propagateCall(call *ast.CallExpr) bool {
	var obj types.Object
	switch f := call.Fun.(type) {
	case *ast.Ident:
		obj = st.pass.TypesInfo.Uses[f]
	case *ast.SelectorExpr:
		obj = st.pass.TypesInfo.Uses[f.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	if _, local := st.a.decls[fn]; !local {
		return false
	}
	grew := false
	for i, arg := range call.Args {
		g := st.exprTaint(arg)
		if g == nil || g.sanitizedBefore(call.Pos()) {
			continue
		}
		set := st.a.paramTaint[fn]
		if set == nil {
			set = make(map[int]bool)
			st.a.paramTaint[fn] = set
		}
		sig := fn.Type().(*types.Signature)
		idx := i
		if sig.Variadic() && idx >= sig.Params().Len() {
			idx = sig.Params().Len() - 1
		}
		if idx < sig.Params().Len() && !set[idx] {
			set[idx] = true
			grew = true
		}
	}
	return grew
}

func render(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return "'" + e.Name + "'"
	case *ast.SelectorExpr:
		if x, ok := e.X.(*ast.Ident); ok {
			return "'" + x.Name + "." + e.Sel.Name + "'"
		}
	}
	return "expression"
}
