// Package a is alloccap golden data: each function is one positive or
// negative case, with // want comments marking expected diagnostics.
package a

import "encoding/binary"

// --- positive cases: the minimized PR 4 crasher shapes ---

// CrasherHeaderCount is the original fuzz crasher shape: a 16-byte stream
// whose header claims terabytes of symbols.
func CrasherHeaderCount(stream []byte) []uint16 {
	n := int(binary.LittleEndian.Uint64(stream))
	out := make([]uint16, n) // want `make size 'n' derives from stream-parsed bytes`
	return out
}

// CrasherCapReuse hides the unbounded make behind a capacity-reuse check:
// cap(buf) < n does not bound n, it is the branch that allocates.
func CrasherCapReuse(stream []byte, buf []uint16) []uint16 {
	n := int(binary.LittleEndian.Uint64(stream))
	if cap(buf) < n {
		buf = make([]uint16, n) // want `make size 'n' derives from stream-parsed bytes`
	}
	return buf[:n]
}

// CrasherAppendLoop grows output until a stream-parsed count is satisfied.
func CrasherAppendLoop(stream []byte) []float64 {
	n := int(binary.LittleEndian.Uint64(stream))
	var out []float64
	for len(out) < n { // want `append loop bounded by a stream-parsed count`
		out = append(out, 0)
	}
	return out
}

// CrasherOverflowGuardOnly checks only the 1<<40 overflow guard, which
// stops integer wrap but still admits terabyte allocations.
func CrasherOverflowGuardOnly(stream []byte) []byte {
	n := int(binary.LittleEndian.Uint64(stream))
	if n > 1<<40 {
		return nil
	}
	return make([]byte, n) // want `make size 'n' derives from stream-parsed bytes`
}

// CrasherClosureRead reads the count through a local reader closure, the
// parser idiom sz's inner payload uses.
func CrasherClosureRead(stream []byte) []uint32 {
	off := 0
	readU64 := func() uint64 {
		v := binary.LittleEndian.Uint64(stream[off:])
		off += 8
		return v
	}
	n := int(readU64())
	return make([]uint32, n) // want `make size 'n' derives from stream-parsed bytes`
}

// CrasherDimsProduct multiplies stream-parsed dimensions, the szx header
// shape.
func CrasherDimsProduct(stream []byte) []float64 {
	nd := int(stream[0])
	if nd == 0 || nd > 4 {
		return nil
	}
	dims := make([]int, nd)
	for i := range dims {
		dims[i] = int(binary.LittleEndian.Uint32(stream[1+4*i:]))
	}
	n := 1
	for _, d := range dims {
		n *= d
	}
	return make([]float64, n) // want `make size 'n' derives from stream-parsed bytes`
}

// CrasherHelper passes the unchecked count into an unexported helper; the
// allocation inside is still attacker-sized.
func CrasherHelper(stream []byte) []byte {
	size := int(binary.LittleEndian.Uint32(stream))
	return expand(stream[4:], size)
}

func expand(body []byte, n int) []byte {
	out := make([]byte, n) // want `make size 'n' derives from stream-parsed bytes`
	copy(out, body)
	return out
}

// --- negative cases: every sanctioned way to bound an allocation ---

// OKPayloadBound rejects counts the payload cannot back.
func OKPayloadBound(stream []byte) []uint16 {
	n := int(binary.LittleEndian.Uint64(stream))
	if n > len(stream)*8 {
		return nil
	}
	return make([]uint16, n)
}

// OKConstCap rejects counts beyond an honest constant ceiling.
func OKConstCap(stream []byte) [][]byte {
	n := int(binary.LittleEndian.Uint64(stream))
	if n > 1<<20 {
		return nil
	}
	return make([][]byte, 0, n)
}

// OKClamp clamps the pre-allocation instead of rejecting, szx-style.
func OKClamp(stream []byte) []float64 {
	n := int(binary.LittleEndian.Uint64(stream))
	capHint := n
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	out := make([]float64, 0, capHint)
	return out
}

// OKLenSized sizes by the input's actual length — memory truth, no taint.
func OKLenSized(stream []byte) []byte {
	out := make([]byte, len(stream))
	copy(out, stream)
	return out
}

// OKIteratorLoop appends under an honest len bound; the tainted value is
// the advancing cursor, not the loop's upper bound.
func OKIteratorLoop(data []byte) []byte {
	var out []byte
	i := 0
	for i < len(data) {
		step := int(data[i]%7) + 1
		out = append(out, data[i])
		i += step
	}
	return out
}

// OKCheckedHelper sanitizes before handing the count to the helper, so
// the helper's allocation is caller-validated (the lzss pattern).
func OKCheckedHelper(stream []byte) []byte {
	size := int(binary.LittleEndian.Uint32(stream))
	if size > 4096*len(stream) {
		return nil
	}
	return expandOK(stream[4:], size)
}

func expandOK(body []byte, n int) []byte {
	out := make([]byte, n)
	copy(out, body)
	return out
}

// OKMethodLen bounds the count against a container's Len() accessor, the
// sz symbol-stream pattern.
type stream struct{ n int }

func (s *stream) Len() int { return s.n }

func OKMethodLen(payload []byte, s *stream) []float64 {
	n := int(binary.LittleEndian.Uint64(payload))
	if s.Len() != n {
		return nil
	}
	return make([]float64, n)
}

// OKSuppressed carries a reviewed waiver; the directive must silence the
// diagnostic (and only for this analyzer).
func OKSuppressed(stream []byte) []byte {
	n := int(binary.LittleEndian.Uint64(stream))
	//ocelotvet:ok alloccap golden-test waiver: exercised by the suppression test
	return make([]byte, n)
}
