// Command benchjson regenerates the benchmark artifacts and writes their
// scalar outcomes as machine-readable JSON, so performance trajectories
// are tracked as file diffs rather than read off scrolling logs:
//
//   - BENCH_codecs.json — the CodecShootout artifact: compression wall,
//     ratio, PSNR, and modelled end-to-end seconds per codec per link.
//   - BENCH_hotpath.json — the HotPath artifact: single-stream sz3 and
//     Huffman MB/s on the overhauled entropy hot path versus the pinned
//     pre-overhaul reference implementations, plus the speedup factors
//     the hot-path acceptance gates on (≥2x decompress, ≥1.3x compress).
//   - BENCH_serve.json — the ServeFairness artifact: the multi-tenant
//     scheduler's Jain fairness index, per-tenant and aggregate MB/s on
//     one shared link, and mid-stage cancellation latency.
//   - BENCH_resume.json — the FaultResume artifact: crash-resume digest
//     identity, resume wall vs full-rerun wall, resent-bytes fraction,
//     flap-retry counts, and permanent-failure fail-fast attempts.
//   - BENCH_obs.json — the ObsOverhead artifact: instrumented-but-disabled
//     vs baseline campaign wall (overhead_frac, acceptance < 0.02) plus
//     span and metric-series coverage from one enabled run.
//   - BENCH_integrity.json — the Integrity artifact: corrupted-link digest
//     identity, injected-vs-detected corruption reconciliation (silent
//     escapes must be zero), retransmit ledger, and bound-guarantee
//     quarantine coverage.
//
// Usage:
//
//	go run ./tools/benchjson [-shrink N] [-seed S] [-out BENCH_codecs.json] [-hotpath-out BENCH_hotpath.json] [-serve-out BENCH_serve.json] [-resume-out BENCH_resume.json] [-obs-out BENCH_obs.json] [-integrity-out BENCH_integrity.json]
//
// Passing an empty string for either output path skips that artifact. The
// Makefile's bench-json target is the canonical invocation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"ocelot/internal/experiments"
)

// report is the emitted JSON document. Values carries every scalar the
// artifact records, keyed exactly as in the Result, so new artifact
// metrics appear in the file without a schema change here.
type report struct {
	Artifact  string             `json:"artifact"`
	Generated string             `json:"generated"`
	GoVersion string             `json:"goVersion"`
	GOOS      string             `json:"goos"`
	GOARCH    string             `json:"goarch"`
	Shrink    int                `json:"shrink"`
	Seed      int64              `json:"seed"`
	ElapsedMS float64            `json:"elapsedMs"`
	Values    map[string]float64 `json:"values"`
	Keys      []string           `json:"keys"` // sorted, for stable diffs
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// writeArtifact runs one driver and writes its report to path.
func writeArtifact(fn func(experiments.Scale) (*experiments.Result, error),
	path string, shrink int, seed int64) (*experiments.Result, error) {
	start := time.Now()
	res, err := fn(experiments.Scale{Shrink: shrink, Seed: seed})
	if err != nil {
		return nil, err
	}
	rep := report{
		Artifact:  res.ID,
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Shrink:    shrink,
		Seed:      seed,
		ElapsedMS: float64(time.Since(start).Milliseconds()),
		Values:    res.Values,
	}
	for k := range res.Values {
		rep.Keys = append(rep.Keys, k)
	}
	sort.Strings(rep.Keys)
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return nil, err
	}
	return res, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	shrink := fs.Int("shrink", 24, "dataset shrink factor for the shootout")
	seed := fs.Int64("seed", 42, "experiment seed")
	out := fs.String("out", "BENCH_codecs.json", "codec shootout output path (empty = skip)")
	hotOut := fs.String("hotpath-out", "BENCH_hotpath.json", "entropy hot-path output path (empty = skip)")
	serveOut := fs.String("serve-out", "BENCH_serve.json", "multi-tenant serve fairness output path (empty = skip)")
	resumeOut := fs.String("resume-out", "BENCH_resume.json", "fault-tolerance crash-resume output path (empty = skip)")
	obsOut := fs.String("obs-out", "BENCH_obs.json", "observability overhead output path (empty = skip)")
	integrityOut := fs.String("integrity-out", "BENCH_integrity.json", "end-to-end integrity output path (empty = skip)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out != "" {
		res, err := writeArtifact(experiments.CodecShootout, *out, *shrink, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s: %d metrics (szx speedup %.1fx, szx share fast/slow %.2f/%.2f)\n",
			*out, len(res.Values), res.Values["speedup_szx"],
			res.Values["szx_share_fast"], res.Values["szx_share_slow"])
	}
	if *hotOut != "" {
		res, err := writeArtifact(experiments.HotPath, *hotOut, *shrink, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s: %d metrics (sz3 decompress %.2fx, compress %.2fx vs pre-overhaul)\n",
			*hotOut, len(res.Values), res.Values["speedup_sz3_decompress"],
			res.Values["speedup_sz3_compress"])
	}
	if *serveOut != "" {
		res, err := writeArtifact(experiments.ServeFairness, *serveOut, *shrink, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s: %d metrics (Jain %.3f, aggregate %.2f of %.2f MB/s, cancel %.3fs)\n",
			*serveOut, len(res.Values), res.Values["jain"],
			res.Values["aggregate_mbps"], res.Values["link_mbps"],
			res.Values["cancel_latency_sec"])
	}
	if *resumeOut != "" {
		res, err := writeArtifact(experiments.FaultResume, *resumeOut, *shrink, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s: %d metrics (resume %.3fs vs full %.3fs, resent %.0f%%, %d flap retries)\n",
			*resumeOut, len(res.Values), res.Values["resume_wall_sec"], res.Values["full_wall_sec"],
			res.Values["resent_fraction"]*100, int(res.Values["flap_retries"]))
	}
	if *obsOut != "" {
		res, err := writeArtifact(experiments.ObsOverhead, *obsOut, *shrink, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s: %d metrics (overhead %+.2f%%, %d spans, %d series enabled)\n",
			*obsOut, len(res.Values), res.Values["overhead_frac"]*100,
			int(res.Values["enabled_spans"]), int(res.Values["metrics_series"]))
	}
	if *integrityOut != "" {
		res, err := writeArtifact(experiments.Integrity, *integrityOut, *shrink, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s: %d metrics (%d corrupt groups recovered, %d retransmits, %.0f silent escapes, %d fields quarantined)\n",
			*integrityOut, len(res.Values), int(res.Values["corrupt_groups"]),
			int(res.Values["retransmits"]), res.Values["silent_escapes"],
			int(res.Values["degraded_fields"]))
	}
	return nil
}
