// Command benchjson regenerates the CodecShootout artifact and writes its
// scalar outcomes as machine-readable JSON (BENCH_codecs.json), so the
// performance trajectory of the codec subsystem — compression wall,
// ratio, PSNR, and modelled end-to-end seconds per codec per link — is
// tracked as a file diff rather than read off scrolling logs.
//
// Usage:
//
//	go run ./tools/benchjson [-shrink N] [-seed S] [-out BENCH_codecs.json]
//
// The Makefile's bench-json target is the canonical invocation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"ocelot/internal/experiments"
)

// report is the emitted JSON document. Values carries every scalar the
// artifact records, keyed exactly as in the Result, so new artifact
// metrics appear in the file without a schema change here.
type report struct {
	Artifact  string             `json:"artifact"`
	Generated string             `json:"generated"`
	GoVersion string             `json:"goVersion"`
	GOOS      string             `json:"goos"`
	GOARCH    string             `json:"goarch"`
	Shrink    int                `json:"shrink"`
	Seed      int64              `json:"seed"`
	ElapsedMS float64            `json:"elapsedMs"`
	Values    map[string]float64 `json:"values"`
	Keys      []string           `json:"keys"` // sorted, for stable diffs
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	shrink := fs.Int("shrink", 24, "dataset shrink factor for the shootout")
	seed := fs.Int64("seed", 42, "experiment seed")
	out := fs.String("out", "BENCH_codecs.json", "output path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	start := time.Now()
	res, err := experiments.CodecShootout(experiments.Scale{Shrink: *shrink, Seed: *seed})
	if err != nil {
		return err
	}
	rep := report{
		Artifact:  res.ID,
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Shrink:    *shrink,
		Seed:      *seed,
		ElapsedMS: float64(time.Since(start).Milliseconds()),
		Values:    res.Values,
	}
	for k := range res.Values {
		rep.Keys = append(rep.Keys, k)
	}
	sort.Strings(rep.Keys)
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d metrics (szx speedup %.1fx, szx share fast/slow %.2f/%.2f)\n",
		*out, len(rep.Keys), res.Values["speedup_szx"],
		res.Values["szx_share_fast"], res.Values["szx_share_slow"])
	return nil
}
