// Command doccheck fails when a Go package exports an undocumented symbol.
// It parses the packages in the given directories (test files excluded) and
// reports every exported top-level function, method, type, constant, and
// variable that has no doc comment — the gate behind `make doc-check`.
//
// Usage:
//
//	go run ./tools/doccheck <dir> [<dir>...]
//
// A declaration group (`const (...)`, `var (...)`) counts as documented if
// the group has a doc comment or every exported name in it does.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <dir> [<dir>...]")
		os.Exit(2)
	}
	var missing []string
	for _, dir := range os.Args[1:] {
		m, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %s: %v\n", dir, err)
			os.Exit(2)
		}
		missing = append(missing, m...)
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		fmt.Fprintf(os.Stderr, "doccheck: %d undocumented exported symbols:\n", len(missing))
		for _, m := range missing {
			fmt.Fprintln(os.Stderr, "  "+m)
		}
		os.Exit(1)
	}
}

// checkDir parses one directory's non-test files and returns the
// undocumented exported symbols as "path: kind Name" strings.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s %s", filepath.ToSlash(p.Filename), p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || !exportedRecv(d) {
						continue
					}
					if d.Doc.Text() == "" {
						kind := "func"
						if d.Recv != nil {
							kind = "method"
						}
						report(d.Pos(), kind, funcName(d))
					}
				case *ast.GenDecl:
					checkGenDecl(d, report)
				}
			}
		}
	}
	return missing, nil
}

// exportedRecv reports whether a method's receiver type is exported (an
// unexported receiver makes the method unreachable outside the package, so
// it is not part of the documented surface).
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

// funcName renders "Name" or "Recv.Name" for error messages.
func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	t := d.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + d.Name.Name
	}
	return d.Name.Name
}

// checkGenDecl handles type/const/var declarations. A documented group
// covers its members; otherwise each exported spec needs its own comment.
func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	kind := d.Tok.String()
	groupDoc := d.Doc.Text() != ""
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			if !groupDoc && s.Doc.Text() == "" && s.Comment.Text() == "" {
				report(s.Pos(), "type", s.Name.Name)
			}
		case *ast.ValueSpec:
			if groupDoc || s.Doc.Text() != "" || s.Comment.Text() != "" {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report(s.Pos(), kind, name.Name)
				}
			}
		}
	}
}
